package pyruntime

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/simconst"
)

func init() {
	simconst.Scale = 1000
}

func TestCallRequiresStart(t *testing.T) {
	Register("m:f", func(arg any) (any, error) { return arg, nil })
	it := New()
	if _, err := it.Call("m:f", 1); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("want ErrNotStarted, got %v", err)
	}
}

func TestStartIdempotent(t *testing.T) {
	it := New()
	it.Start()
	if !it.Started() {
		t.Fatal("should be started")
	}
	it.Start() // no-op
	if !it.Started() {
		t.Fatal("still started")
	}
}

func TestCallEcho(t *testing.T) {
	Register("mod:echo", func(arg any) (any, error) { return arg, nil })
	it := New()
	it.CallFactor = 1
	it.CallOverhead = time.Nanosecond
	it.Start()
	out, err := it.Call("mod:echo", "hello")
	if err != nil {
		t.Fatal(err)
	}
	if out != "hello" {
		t.Fatalf("echo returned %v", out)
	}
	if it.Calls() != 1 {
		t.Fatalf("calls = %d", it.Calls())
	}
}

func TestCallUnknown(t *testing.T) {
	it := New()
	it.Start()
	if _, err := it.Call("ghost:fn", nil); !errors.Is(err, ErrUnknownFunction) {
		t.Fatalf("want unknown function, got %v", err)
	}
}

func TestCallPropagatesError(t *testing.T) {
	wantErr := errors.New("python traceback")
	Register("mod:fail", func(arg any) (any, error) { return nil, wantErr })
	it := New()
	it.CallFactor = 1
	it.Start()
	if _, err := it.Call("mod:fail", nil); !errors.Is(err, wantErr) {
		t.Fatalf("want wrapped error, got %v", err)
	}
	if it.Calls() != 0 {
		t.Fatal("failed calls should not count")
	}
}

func TestFactorBurnsRealWork(t *testing.T) {
	count := 0
	Register("mod:count", func(arg any) (any, error) {
		count++
		return count, nil
	})
	it := New()
	it.CallFactor = 3
	it.CallOverhead = time.Nanosecond
	it.Start()
	out, err := it.Call("mod:count", nil)
	if err != nil {
		t.Fatal(err)
	}
	// First execution's result is returned even though the body re-ran.
	if out != 1 {
		t.Fatalf("should return first execution's result, got %v", out)
	}
	if count != 3 {
		t.Fatalf("factor 3 should run the body 3 times, ran %d", count)
	}
}

func TestFractionalFactorSpins(t *testing.T) {
	Register("mod:sleepy", func(arg any) (any, error) {
		time.Sleep(2 * time.Millisecond)
		return "ok", nil
	})
	it := New()
	it.CallFactor = 1.5
	it.CallOverhead = time.Nanosecond
	it.Start()
	start := time.Now()
	if _, err := it.Call("mod:sleepy", nil); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 2900*time.Microsecond {
		t.Fatalf("factor 1.5 of a 2ms body should take >=3ms, took %v", el)
	}
}

func TestRegistered(t *testing.T) {
	Register("mod:present", func(arg any) (any, error) { return nil, nil })
	if !Registered("mod:present") {
		t.Fatal("should be registered")
	}
	if Registered("mod:absent") {
		t.Fatal("should not be registered")
	}
}

func TestImportsTracked(t *testing.T) {
	it := New()
	it.Start()
	it.Import("numpy")
	it.Import("keras")
	// No crash, introspection only.
	it.Stop()
	if it.Started() {
		t.Fatal("stop should stop")
	}
}

func TestMarshalArgNormalizesTypes(t *testing.T) {
	type payload struct {
		N int      `json:"n"`
		S []string `json:"s"`
	}
	out, err := MarshalArg(payload{N: 3, S: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	m, ok := out.(map[string]any)
	if !ok {
		t.Fatalf("want map, got %T", out)
	}
	if m["n"] != float64(3) {
		t.Fatalf("ints should become float64 across the boundary, got %T", m["n"])
	}
	if _, err := MarshalArg(make(chan int)); err == nil {
		t.Fatal("unmarshalable type should fail")
	}
}

func TestConcurrentCalls(t *testing.T) {
	Register("mod:id", func(arg any) (any, error) { return arg, nil })
	it := New()
	it.CallFactor = 1
	it.CallOverhead = time.Nanosecond
	it.Start()
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func(i int) {
			out, err := it.Call("mod:id", i)
			if err == nil && out != i {
				err = fmt.Errorf("wrong result %v for %d", out, i)
			}
			done <- err
		}(i)
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if it.Calls() != 16 {
		t.Fatalf("calls = %d", it.Calls())
	}
}
