package queue

import (
	"testing"
	"time"
)

func BenchmarkPushPullAck(b *testing.B) {
	br := NewBroker(time.Minute)
	defer br.Close()
	body := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Push("bench", body, "", "", "")
		msg, ok := br.Pull("bench", 0)
		if !ok {
			b.Fatal("message missing")
		}
		br.Ack("bench", msg.ID)
	}
}

func BenchmarkRequestReply(b *testing.B) {
	br := NewBroker(time.Minute)
	defer br.Close()
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			msg, ok := br.Pull("svc", 50*time.Millisecond)
			if ok {
				br.Reply(msg, msg.Body)
			}
		}
	}()
	defer close(stop)
	body := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := br.Request("svc", body, 5*time.Second); !ok {
			b.Fatal("request timed out")
		}
	}
}

func BenchmarkConcurrentProducersConsumers(b *testing.B) {
	br := NewBroker(time.Minute)
	defer br.Close()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			br.Push("par", []byte("x"), "", "", "")
			if msg, ok := br.Pull("par", time.Second); ok {
				br.Ack("par", msg.ID)
			}
		}
	})
}
