package queue

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// The DRR fairness contract, pinned: a queue striped into per-tenant
// lanes serves each backlogged lane in proportion to its weight, a
// flood from one tenant deepens only its own lane, and a queue that
// only ever sees one lane behaves exactly like the old single FIFO.

// TestSingleLaneIsFIFO: untagged pushes (the whole pre-tenancy data
// plane) must come back in exact push order — byte-identical behavior
// to the single ready-list broker.
func TestSingleLaneIsFIFO(t *testing.T) {
	b := NewBroker(time.Minute)
	defer b.Close()
	const n = 100
	for i := 0; i < n; i++ {
		b.Push("q", []byte{byte(i)}, "", "", "")
	}
	for i := 0; i < n; i++ {
		msg, ok := b.Pull("q", 0)
		if !ok {
			t.Fatalf("pull %d: queue empty", i)
		}
		if msg.Body[0] != byte(i) {
			t.Fatalf("pull %d: got %d — single-lane order must be FIFO", i, msg.Body[0])
		}
		b.Ack("q", msg.ID)
	}
}

// TestDRRWeightedShares: with every lane permanently backlogged, one
// full rotation serves exactly weight_i messages from lane i — so over
// k rotations the dequeue counts are in exact 4:2:1 proportion for
// high:normal:low priority weights.
func TestDRRWeightedShares(t *testing.T) {
	b := NewBroker(time.Minute)
	defer b.Close()
	b.SetLaneWeight("high", 4)
	b.SetLaneWeight("normal", 2)
	b.SetLaneWeight("low", 1)

	const perTenant = 400
	for i := 0; i < perTenant; i++ {
		for _, tenant := range []string{"high", "normal", "low"} {
			b.Push("q", []byte(tenant), "", "", tenant)
		}
	}
	// Pull 7 rotations' worth (4+2+1 per rotation) — all lanes stay
	// backlogged throughout, so the shares must be exact.
	counts := map[string]int{}
	const rotations = 7
	for i := 0; i < rotations*7; i++ {
		msg, ok := b.Pull("q", 0)
		if !ok {
			t.Fatalf("pull %d: queue empty", i)
		}
		counts[msg.Tenant]++
		b.Ack("q", msg.ID)
	}
	if counts["high"] != 4*rotations || counts["normal"] != 2*rotations || counts["low"] != rotations {
		t.Fatalf("dequeue shares = %v, want exact 4:2:1 (%d:%d:%d)",
			counts, 4*rotations, 2*rotations, rotations)
	}
}

// TestFairnessHotTenantCannotStarve is the flood property: a hot tenant
// holding a 10x-deeper backlog must not delay an equal-weight quiet
// tenant's messages beyond its own share of the rotation. Every quiet-
// tenant message must surface within a handful of pulls of its turn —
// bounded by the hot lane's weight, never by the hot lane's depth.
func TestFairnessHotTenantCannotStarve(t *testing.T) {
	b := NewBroker(time.Minute)
	defer b.Close()
	// Hot gets the HIGHEST weight the system hands out; the property
	// must hold even then, because the bound is the weight (4), not the
	// backlog (10x).
	b.SetLaneWeight("hot", 4)
	b.SetLaneWeight("bg", 1)

	const bgMsgs = 50
	for i := 0; i < bgMsgs*10; i++ {
		b.Push("q", []byte("hot"), "", "", "hot")
	}
	for i := 0; i < bgMsgs; i++ {
		b.Push("q", []byte("bg"), "", "", "bg")
	}

	// maxGap is the worst-case pulls between consecutive bg deliveries:
	// one full hot quantum (4) + the bg message itself.
	const maxGap = 5
	sinceBG := 0
	served := 0
	for served < bgMsgs {
		msg, ok := b.Pull("q", 0)
		if !ok {
			t.Fatal("queue empty before all bg messages served")
		}
		b.Ack("q", msg.ID)
		if msg.Tenant == "bg" {
			served++
			sinceBG = 0
			continue
		}
		sinceBG++
		if sinceBG > maxGap {
			t.Fatalf("bg tenant starved: %d consecutive hot deliveries (bound %d) after %d bg served",
				sinceBG, maxGap, served)
		}
	}
}

// TestDRRPropertyRandomized is the generative check: random tenant
// mixes, weights, and interleavings must (a) never lose or duplicate a
// message, (b) keep each lane itself FIFO, and (c) never let any
// backlogged lane go unserved for more than a full rotation's worth of
// pulls (sum of all weights).
func TestDRRPropertyRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		b := NewBroker(time.Minute)
		tenants := make([]string, 2+rng.Intn(4)) // 2..5 lanes
		weightSum := 0
		for i := range tenants {
			tenants[i] = fmt.Sprintf("t%d", i)
			w := 1 + rng.Intn(4)
			weightSum += w
			b.SetLaneWeight(tenants[i], w)
		}
		// Random per-tenant volumes, interleaved pushes.
		total := 0
		seq := map[string]int{}
		var pushes []string
		for _, tenant := range tenants {
			n := 1 + rng.Intn(200)
			total += n
			for i := 0; i < n; i++ {
				pushes = append(pushes, tenant)
			}
		}
		rng.Shuffle(len(pushes), func(i, j int) { pushes[i], pushes[j] = pushes[j], pushes[i] })
		for _, tenant := range pushes {
			b.Push("q", []byte(fmt.Sprintf("%s/%d", tenant, seq[tenant])), "", "", tenant)
			seq[tenant]++
		}

		nextSeq := map[string]int{}
		unserved := map[string]int{} // pulls since a backlogged lane was last served
		for i := 0; i < total; i++ {
			msg, ok := b.Pull("q", 0)
			if !ok {
				t.Fatalf("trial %d: queue empty after %d of %d pulls", trial, i, total)
			}
			b.Ack("q", msg.ID)
			want := fmt.Sprintf("%s/%d", msg.Tenant, nextSeq[msg.Tenant])
			if string(msg.Body) != want {
				t.Fatalf("trial %d: lane %s out of order: got %s, want %s", trial, msg.Tenant, msg.Body, want)
			}
			nextSeq[msg.Tenant]++
			for _, tenant := range tenants {
				if tenant == msg.Tenant || b.LaneLen("q", tenant) == 0 {
					unserved[tenant] = 0
					continue
				}
				unserved[tenant]++
				if unserved[tenant] > weightSum {
					t.Fatalf("trial %d: backlogged lane %s unserved for %d pulls (rotation is %d)",
						trial, tenant, unserved[tenant], weightSum)
				}
			}
		}
		if got := b.Len("q"); got != 0 {
			t.Fatalf("trial %d: %d messages left after draining", trial, got)
		}
		b.Close()
	}
}

// TestNackReturnsToOwnLane: a redelivered message must rejoin its own
// tenant's lane, not the default one.
func TestNackReturnsToOwnLane(t *testing.T) {
	b := NewBroker(time.Minute)
	defer b.Close()
	b.Push("q", []byte("x"), "", "", "acme")
	msg, ok := b.Pull("q", 0)
	if !ok || msg.Tenant != "acme" {
		t.Fatalf("pull = %+v, %v", msg, ok)
	}
	b.Nack("q", msg.ID)
	if got := b.LaneLen("q", "acme"); got != 1 {
		t.Fatalf("after nack: acme lane has %d messages, want 1", got)
	}
	if got := b.LaneLen("q", ""); got != 0 {
		t.Fatalf("after nack: default lane has %d messages, want 0", got)
	}
	msg2, ok := b.Pull("q", 0)
	if !ok || msg2.Tenant != "acme" || msg2.Attempt != 2 {
		t.Fatalf("redelivery = %+v, %v; want acme attempt 2", msg2, ok)
	}
	b.Ack("q", msg2.ID)
}

// --- fairness benchmarks -----------------------------------------------------
// CI's bench job runs these with -benchmem: the DRR dequeue must stay
// allocation-comparable to the old single-FIFO pop.

func BenchmarkDRRSingleLane(b *testing.B) {
	br := NewBroker(time.Minute)
	defer br.Close()
	body := []byte("x")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Push("bench", body, "", "", "")
		msg, _ := br.Pull("bench", 0)
		br.Ack("bench", msg.ID)
	}
}

func BenchmarkDRREightLanes(b *testing.B) {
	br := NewBroker(time.Minute)
	defer br.Close()
	tenants := make([]string, 8)
	for i := range tenants {
		tenants[i] = fmt.Sprintf("t%d", i)
		br.SetLaneWeight(tenants[i], 1+i%4)
	}
	body := []byte("x")
	// Keep every lane backlogged so the rotation is always live.
	for _, tenant := range tenants {
		for i := 0; i < 64; i++ {
			br.Push("bench", body, "", "", tenant)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Push("bench", body, "", "", tenants[i%len(tenants)])
		msg, _ := br.Pull("bench", 0)
		br.Ack("bench", msg.ID)
	}
}
