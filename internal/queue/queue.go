// Package queue implements the ZeroMQ-style task conduit of §IV-A: the
// Management Service "uses a ZeroMQ queue to send tasks to registered
// Task Managers for execution. The queue provides a reliable messaging
// model that ensures tasks are received and executed."
//
// The broker hosts named queues. Producers push messages; consumers pull
// and must acknowledge within a visibility timeout or the message is
// redelivered (at-least-once semantics). Request/reply is layered on top
// with per-message ReplyTo queues, mirroring the paper's flow where Task
// Managers "retrieve waiting tasks from the queue, unpackage the
// request, execute the task, and return the results via the same queue."
package queue

import (
	"container/list"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Message is one queued envelope.
type Message struct {
	// ID is assigned by the broker on enqueue.
	ID string `json:"id"`
	// Queue the message was published to.
	Queue string `json:"queue"`
	// ReplyTo names the queue where a reply should be pushed ("" if
	// no reply is expected).
	ReplyTo string `json:"reply_to,omitempty"`
	// CorrelationID links a reply to its request.
	CorrelationID string `json:"correlation_id,omitempty"`
	// Body is the opaque payload.
	Body []byte `json:"body"`
	// Attempt counts deliveries (1 on first delivery).
	Attempt int `json:"attempt"`
}

// NewID returns a random 128-bit hex identifier.
func NewID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("queue: crypto/rand failed: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

type pendingMsg struct {
	msg      Message
	deadline time.Time
}

type namedQueue struct {
	mu      sync.Mutex
	ready   *list.List // of Message
	pending map[string]*pendingMsg
	waiters *list.List // of chan Message
}

func newNamedQueue() *namedQueue {
	return &namedQueue{ready: list.New(), pending: make(map[string]*pendingMsg), waiters: list.New()}
}

// Broker is an in-process message broker. Remote access goes through
// the rpc-based Endpoint in transport.go; in-process components (tests,
// single-binary deployments) use it directly.
type Broker struct {
	mu     sync.RWMutex
	queues map[string]*namedQueue

	visibility time.Duration
	stopSweep  chan struct{}
	sweepOnce  sync.Once
}

// NewBroker creates a broker whose unacknowledged deliveries become
// visible again after the given timeout.
func NewBroker(visibility time.Duration) *Broker {
	if visibility <= 0 {
		visibility = 30 * time.Second
	}
	b := &Broker{
		queues:     make(map[string]*namedQueue),
		visibility: visibility,
		stopSweep:  make(chan struct{}),
	}
	go b.sweeper()
	return b
}

// Close stops the redelivery sweeper.
func (b *Broker) Close() { b.sweepOnce.Do(func() { close(b.stopSweep) }) }

func (b *Broker) queue(name string) *namedQueue {
	b.mu.RLock()
	q, ok := b.queues[name]
	b.mu.RUnlock()
	if ok {
		return q
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if q, ok = b.queues[name]; ok {
		return q
	}
	q = newNamedQueue()
	b.queues[name] = q
	return q
}

// Push enqueues body on the named queue and returns the message ID.
func (b *Broker) Push(queueName string, body []byte, replyTo, correlationID string) string {
	msg := Message{
		ID:            NewID(),
		Queue:         queueName,
		ReplyTo:       replyTo,
		CorrelationID: correlationID,
		Body:          body,
	}
	b.deliver(b.queue(queueName), msg)
	return msg.ID
}

func (b *Broker) deliver(q *namedQueue, msg Message) {
	q.mu.Lock()
	// Hand directly to a waiting consumer when one is parked.
	for q.waiters.Len() > 0 {
		front := q.waiters.Front()
		ch := front.Value.(chan Message)
		q.waiters.Remove(front)
		msg.Attempt++
		q.pending[msg.ID] = &pendingMsg{msg: msg, deadline: time.Now().Add(b.visibility)}
		q.mu.Unlock()
		ch <- msg
		return
	}
	q.ready.PushBack(msg)
	q.mu.Unlock()
}

// Pull waits up to timeout for a message on the named queue. ok is false
// on timeout. Delivered messages must be Ack'd before the visibility
// timeout or they are requeued.
func (b *Broker) Pull(queueName string, timeout time.Duration) (Message, bool) {
	q := b.queue(queueName)
	q.mu.Lock()
	if q.ready.Len() > 0 {
		front := q.ready.Front()
		msg := front.Value.(Message)
		q.ready.Remove(front)
		msg.Attempt++
		q.pending[msg.ID] = &pendingMsg{msg: msg, deadline: time.Now().Add(b.visibility)}
		q.mu.Unlock()
		return msg, true
	}
	if timeout <= 0 {
		q.mu.Unlock()
		return Message{}, false
	}
	ch := make(chan Message, 1)
	elem := q.waiters.PushBack(ch)
	q.mu.Unlock()

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case msg := <-ch:
		return msg, true
	case <-timer.C:
		q.mu.Lock()
		// Remove our waiter; a concurrent deliver may have already
		// removed it and sent — check the channel once more.
		q.waiters.Remove(elem)
		q.mu.Unlock()
		select {
		case msg := <-ch:
			return msg, true
		default:
			return Message{}, false
		}
	}
}

// Ack confirms processing of a delivered message, removing it from the
// redelivery set. It reports whether the message was pending.
func (b *Broker) Ack(queueName, msgID string) bool {
	q := b.queue(queueName)
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.pending[msgID]; !ok {
		return false
	}
	delete(q.pending, msgID)
	return true
}

// Nack returns a delivered message to the queue immediately.
func (b *Broker) Nack(queueName, msgID string) bool {
	q := b.queue(queueName)
	q.mu.Lock()
	p, ok := q.pending[msgID]
	if !ok {
		q.mu.Unlock()
		return false
	}
	delete(q.pending, msgID)
	q.mu.Unlock()
	b.deliver(q, p.msg)
	return true
}

// Len reports ready (not in-flight) messages on a queue.
func (b *Broker) Len(queueName string) int {
	q := b.queue(queueName)
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.ready.Len()
}

// InFlight reports delivered-but-unacknowledged messages on a queue.
func (b *Broker) InFlight(queueName string) int {
	q := b.queue(queueName)
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// sweeper periodically requeues messages whose visibility expired.
func (b *Broker) sweeper() {
	interval := b.visibility / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-b.stopSweep:
			return
		case <-ticker.C:
			b.sweep(time.Now())
		}
	}
}

func (b *Broker) sweep(now time.Time) {
	b.mu.RLock()
	queues := make([]*namedQueue, 0, len(b.queues))
	for _, q := range b.queues {
		queues = append(queues, q)
	}
	b.mu.RUnlock()
	for _, q := range queues {
		var expired []Message
		q.mu.Lock()
		for id, p := range q.pending {
			if now.After(p.deadline) {
				expired = append(expired, p.msg)
				delete(q.pending, id)
			}
		}
		q.mu.Unlock()
		for _, msg := range expired {
			b.deliver(q, msg)
		}
	}
}

// Request pushes body on queueName with a fresh reply queue, then waits
// for the reply. It is the synchronous-invocation primitive of §IV-A.
func (b *Broker) Request(queueName string, body []byte, timeout time.Duration) ([]byte, bool) {
	replyQ := "reply." + NewID()
	corr := NewID()
	b.Push(queueName, body, replyQ, corr)
	deadline := time.Now().Add(timeout)
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, false
		}
		msg, ok := b.Pull(replyQ, remaining)
		if !ok {
			return nil, false
		}
		b.Ack(replyQ, msg.ID)
		if msg.CorrelationID == corr {
			return msg.Body, true
		}
	}
}

// Reply pushes a response for msg onto its ReplyTo queue and acks the
// original. It is a no-op for messages with no ReplyTo.
func (b *Broker) Reply(msg Message, body []byte) {
	if msg.ReplyTo != "" {
		b.Push(msg.ReplyTo, body, "", msg.CorrelationID)
	}
	b.Ack(msg.Queue, msg.ID)
}
