// Package queue implements the ZeroMQ-style task conduit of §IV-A: the
// Management Service "uses a ZeroMQ queue to send tasks to registered
// Task Managers for execution. The queue provides a reliable messaging
// model that ensures tasks are received and executed."
//
// The broker hosts named queues. Producers push messages; consumers pull
// and must acknowledge within a visibility timeout or the message is
// redelivered (at-least-once semantics). Request/reply is layered on top
// with per-message ReplyTo queues, mirroring the paper's flow where Task
// Managers "retrieve waiting tasks from the queue, unpackage the
// request, execute the task, and return the results via the same queue."
//
// Fairness: each named queue is internally striped into per-tenant
// lanes, drained by deficit round-robin (DRR) weighted by the tenant's
// priority class (SetLaneWeight). A push carries an optional tenant
// tag; untagged messages land in the default lane (""), and a queue
// that only ever sees one lane degenerates to exactly the old single
// FIFO — order, redelivery, and Drop/Purge semantics unchanged. With
// multiple lanes, a flood from one tenant can deepen only its own
// lane: the DRR scheduler keeps serving other lanes at their weighted
// share, so a quiet tenant's latency is bounded by its own backlog,
// not the aggressor's.
package queue

import (
	"container/list"
	"context"
	"crypto/rand"
	"encoding/hex"
	"strings"
	"sync"
	"time"
)

// Message is one queued envelope.
type Message struct {
	// ID is assigned by the broker on enqueue.
	ID string `json:"id"`
	// Queue the message was published to.
	Queue string `json:"queue"`
	// ReplyTo names the queue where a reply should be pushed ("" if
	// no reply is expected).
	ReplyTo string `json:"reply_to,omitempty"`
	// CorrelationID links a reply to its request.
	CorrelationID string `json:"correlation_id,omitempty"`
	// Tenant is the fairness lane tag ("" = default lane). Redelivery
	// returns a message to its own lane.
	Tenant string `json:"tenant,omitempty"`
	// Body is the opaque payload.
	Body []byte `json:"body"`
	// Attempt counts deliveries (1 on first delivery).
	Attempt int `json:"attempt"`
	// enqueued is stamped by Push; the sweeper uses it to expire
	// stranded replies on abandoned reply queues.
	enqueued time.Time
}

// replyQueuePrefix names the per-request reply queues; the sweeper
// garbage-collects them (see sweep) so canceled or completed requests
// do not leak queue state.
const replyQueuePrefix = "reply."

// NewID returns a random 128-bit hex identifier.
func NewID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("queue: crypto/rand failed: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

type pendingMsg struct {
	msg      Message
	deadline time.Time
}

// lane is one tenant's FIFO within a named queue. deficit is the DRR
// byte^W message credit: each round-robin visit tops it up by the
// lane's weight, and each dequeue spends one.
type lane struct {
	ready   *list.List // of Message
	deficit int
}

// namedQueue holds per-tenant ready lanes plus the queue-wide pending
// set and parked consumers. Invariant: every lane present in lanes /
// order has at least one ready message — lanes are created on first
// push and removed the moment they drain, so the DRR rotation never
// spins over empty lanes and a single-tenant queue is one FIFO.
type namedQueue struct {
	mu      sync.Mutex
	lanes   map[string]*lane
	order   []string // DRR visit order (lane creation order)
	rr      int      // index into order of the lane being served
	pending map[string]*pendingMsg
	waiters *list.List // of chan Message
}

func newNamedQueue() *namedQueue {
	return &namedQueue{
		lanes:   make(map[string]*lane),
		pending: make(map[string]*pendingMsg),
		waiters: list.New(),
	}
}

// laneLocked returns the tag's lane, creating and enrolling it in the
// rotation if needed. q.mu held.
func (q *namedQueue) laneLocked(tag string) *lane {
	ln, ok := q.lanes[tag]
	if !ok {
		ln = &lane{ready: list.New()}
		q.lanes[tag] = ln
		q.order = append(q.order, tag)
	}
	return ln
}

// removeLaneLocked drops a drained lane from the rotation, keeping rr
// pointed at the same next-up lane. q.mu held.
func (q *namedQueue) removeLaneLocked(tag string) {
	delete(q.lanes, tag)
	for i, name := range q.order {
		if name == tag {
			q.order = append(q.order[:i], q.order[i+1:]...)
			if i < q.rr {
				q.rr--
			}
			break
		}
	}
	if q.rr >= len(q.order) {
		q.rr = 0
	}
}

// readyLenLocked sums ready messages across lanes. q.mu held.
func (q *namedQueue) readyLenLocked() int {
	n := 0
	for _, ln := range q.lanes {
		n += ln.ready.Len()
	}
	return n
}

// Broker is an in-process message broker. Remote access goes through
// the rpc-based Endpoint in transport.go; in-process components (tests,
// single-binary deployments) use it directly.
type Broker struct {
	mu     sync.RWMutex
	queues map[string]*namedQueue

	visibility time.Duration
	stopSweep  chan struct{}
	sweepOnce  sync.Once

	// fairMu guards the broker-wide fairness state: configured lane
	// weights and the per-tenant dequeue counters (the stats
	// observable for dequeue share). It is a leaf lock — acquired
	// under q.mu, never the other way around.
	fairMu     sync.Mutex
	laneWeight map[string]int
	dequeues   map[string]uint64
}

// NewBroker creates a broker whose unacknowledged deliveries become
// visible again after the given timeout.
func NewBroker(visibility time.Duration) *Broker {
	if visibility <= 0 {
		visibility = 30 * time.Second
	}
	b := &Broker{
		queues:     make(map[string]*namedQueue),
		visibility: visibility,
		stopSweep:  make(chan struct{}),
		laneWeight: make(map[string]int),
		dequeues:   make(map[string]uint64),
	}
	go b.sweeper()
	return b
}

// Close stops the redelivery sweeper.
func (b *Broker) Close() { b.sweepOnce.Do(func() { close(b.stopSweep) }) }

// SetLaneWeight sets the DRR quantum for a tenant lane across every
// queue (weights are a tenant property, not a queue property). Weights
// below 1 are clamped to 1; unconfigured lanes weigh 1.
func (b *Broker) SetLaneWeight(tenant string, weight int) {
	if weight < 1 {
		weight = 1
	}
	b.fairMu.Lock()
	b.laneWeight[tenant] = weight
	b.fairMu.Unlock()
}

// laneWeightOf resolves a lane's DRR quantum (default 1).
func (b *Broker) laneWeightOf(tenant string) int {
	b.fairMu.Lock()
	defer b.fairMu.Unlock()
	if w, ok := b.laneWeight[tenant]; ok {
		return w
	}
	return 1
}

// noteDequeue counts one delivery on a tenant lane.
func (b *Broker) noteDequeue(tenant string) {
	b.fairMu.Lock()
	b.dequeues[tenant]++
	b.fairMu.Unlock()
}

// LaneDequeues snapshots the per-tenant delivery counters (reply-queue
// deliveries land on the requesting tenant's own tag, or the default
// lane).
func (b *Broker) LaneDequeues() map[string]uint64 {
	b.fairMu.Lock()
	defer b.fairMu.Unlock()
	out := make(map[string]uint64, len(b.dequeues))
	for t, n := range b.dequeues {
		out[t] = n
	}
	return out
}

func (b *Broker) queue(name string) *namedQueue {
	b.mu.RLock()
	q, ok := b.queues[name]
	b.mu.RUnlock()
	if ok {
		return q
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if q, ok = b.queues[name]; ok {
		return q
	}
	q = newNamedQueue()
	b.queues[name] = q
	return q
}

// Push enqueues body on the named queue and returns the message ID.
// tenant tags the fairness lane ("" = default).
func (b *Broker) Push(queueName string, body []byte, replyTo, correlationID, tenant string) string {
	msg := Message{
		ID:            NewID(),
		Queue:         queueName,
		ReplyTo:       replyTo,
		CorrelationID: correlationID,
		Tenant:        tenant,
		Body:          body,
		enqueued:      time.Now(),
	}
	b.deliver(b.queue(queueName), msg)
	return msg.ID
}

// DeleteQueue removes an idle queue — no ready messages, no in-flight
// deliveries, no parked consumers — from the broker, reporting whether
// it was removed. The ready check matters: a reply delivered between a
// requester's polls must not be deleted with the queue (the requester
// would then wait out its full deadline for work that completed).
// Request sides call it on their reply queues when done; a reply
// racing the deletion simply recreates the queue and the sweeper
// collects it.
func (b *Broker) DeleteQueue(name string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	q, ok := b.queues[name]
	if !ok {
		return false
	}
	q.mu.Lock()
	idle := len(q.lanes) == 0 && len(q.pending) == 0 && q.waiters.Len() == 0
	q.mu.Unlock()
	if !idle {
		return false
	}
	delete(b.queues, name)
	return true
}

func (b *Broker) deliver(q *namedQueue, msg Message) {
	q.mu.Lock()
	// Hand directly to a waiting consumer when one is parked. The
	// queue is necessarily empty then (a waiter only parks on an empty
	// queue), so fairness has nothing to arbitrate — but the delivery
	// still counts toward the lane's dequeue share.
	for q.waiters.Len() > 0 {
		front := q.waiters.Front()
		ch := front.Value.(chan Message)
		q.waiters.Remove(front)
		msg.Attempt++
		q.pending[msg.ID] = &pendingMsg{msg: msg, deadline: time.Now().Add(b.visibility)}
		q.mu.Unlock()
		b.noteDequeue(msg.Tenant)
		ch <- msg
		return
	}
	q.laneLocked(msg.Tenant).ready.PushBack(msg)
	q.mu.Unlock()
}

// popLocked removes and returns the next ready message under deficit
// round-robin: the rotation stays on one lane until its deficit (topped
// up by the lane weight on each visit) is spent or the lane drains,
// then advances. q.mu held; reports false on an empty queue.
func (b *Broker) popLocked(q *namedQueue) (Message, bool) {
	if len(q.order) == 0 {
		return Message{}, false
	}
	if q.rr >= len(q.order) {
		q.rr = 0
	}
	tag := q.order[q.rr]
	ln := q.lanes[tag]
	if ln.deficit <= 0 {
		ln.deficit = b.laneWeightOf(tag)
	}
	msg := ln.ready.Remove(ln.ready.Front()).(Message)
	ln.deficit--
	switch {
	case ln.ready.Len() == 0:
		// Drained lanes leave the rotation (and forfeit leftover
		// credit — an idle tenant must not bank a burst).
		q.removeLaneLocked(tag)
	case ln.deficit <= 0:
		q.rr++
		if q.rr >= len(q.order) {
			q.rr = 0
		}
	}
	return msg, true
}

// Pull waits up to timeout for a message on the named queue. ok is false
// on timeout. Delivered messages must be Ack'd before the visibility
// timeout or they are requeued.
func (b *Broker) Pull(queueName string, timeout time.Duration) (Message, bool) {
	return b.PullCtx(context.Background(), queueName, timeout)
}

// PullCtx is Pull bounded additionally by ctx: it returns early (ok
// false) when ctx ends, so a canceled consumer never sits out its full
// poll timeout. A timeout <= 0 means "bounded by ctx alone"; with a
// background ctx that degenerates to the old non-blocking poll.
func (b *Broker) PullCtx(ctx context.Context, queueName string, timeout time.Duration) (Message, bool) {
	q := b.queue(queueName)
	q.mu.Lock()
	if msg, ok := b.popLocked(q); ok {
		msg.Attempt++
		q.pending[msg.ID] = &pendingMsg{msg: msg, deadline: time.Now().Add(b.visibility)}
		q.mu.Unlock()
		b.noteDequeue(msg.Tenant)
		return msg, true
	}
	if timeout <= 0 && ctx.Done() == nil {
		q.mu.Unlock()
		return Message{}, false
	}
	ch := make(chan Message, 1)
	elem := q.waiters.PushBack(ch)
	q.mu.Unlock()

	var timerC <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timerC = timer.C
	}
	abort := func() (Message, bool) {
		q.mu.Lock()
		// Remove our waiter; a concurrent deliver may have already
		// removed it and sent — check the channel once more.
		q.waiters.Remove(elem)
		q.mu.Unlock()
		select {
		case msg := <-ch:
			return msg, true
		default:
			return Message{}, false
		}
	}
	select {
	case msg := <-ch:
		return msg, true
	case <-timerC:
		return abort()
	case <-ctx.Done():
		return abort()
	}
}

// Drop removes a not-yet-delivered message from a queue's ready lanes,
// reporting whether it was found. A canceled requester uses it to
// withdraw its task before any consumer picks it up; once delivered
// (pending) the message is the consumer's and Drop reports false.
func (b *Broker) Drop(queueName, msgID string) bool {
	q := b.queue(queueName)
	q.mu.Lock()
	defer q.mu.Unlock()
	for tag, ln := range q.lanes {
		for e := ln.ready.Front(); e != nil; e = e.Next() {
			if e.Value.(Message).ID == msgID {
				ln.ready.Remove(e)
				if ln.ready.Len() == 0 {
					q.removeLaneLocked(tag)
				}
				return true
			}
		}
	}
	return false
}

// Purge withdraws every message from a queue — ready AND delivered-but-
// unacknowledged — returning how many were removed. It is the
// dead-consumer cleanup: when a Task Manager is declared lost or
// deregistered, tasks it claimed (pulled, never acked) must not sit out
// the visibility timeout only to be redelivered into a queue nobody
// consumes, and tasks still ready must not strand their requesters.
// Parked consumers are left in place: a revived consumer simply resumes
// on an empty queue.
func (b *Broker) Purge(queueName string) int {
	q := b.queue(queueName)
	q.mu.Lock()
	defer q.mu.Unlock()
	n := q.readyLenLocked() + len(q.pending)
	q.lanes = make(map[string]*lane)
	q.order = nil
	q.rr = 0
	q.pending = make(map[string]*pendingMsg)
	return n
}

// Ack confirms processing of a delivered message, removing it from the
// redelivery set. It reports whether the message was pending.
func (b *Broker) Ack(queueName, msgID string) bool {
	q := b.queue(queueName)
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.pending[msgID]; !ok {
		return false
	}
	delete(q.pending, msgID)
	return true
}

// Nack returns a delivered message to the queue (its own lane)
// immediately.
func (b *Broker) Nack(queueName, msgID string) bool {
	q := b.queue(queueName)
	q.mu.Lock()
	p, ok := q.pending[msgID]
	if !ok {
		q.mu.Unlock()
		return false
	}
	delete(q.pending, msgID)
	q.mu.Unlock()
	b.deliver(q, p.msg)
	return true
}

// Queues reports how many named queues the broker currently holds —
// the observability hook for reply-queue garbage collection.
func (b *Broker) Queues() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.queues)
}

// Len reports ready (not in-flight) messages on a queue, across all
// lanes.
func (b *Broker) Len(queueName string) int {
	q := b.queue(queueName)
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.readyLenLocked()
}

// LaneLen reports ready messages on one tenant lane of a queue.
func (b *Broker) LaneLen(queueName, tenant string) int {
	q := b.queue(queueName)
	q.mu.Lock()
	defer q.mu.Unlock()
	if ln, ok := q.lanes[tenant]; ok {
		return ln.ready.Len()
	}
	return 0
}

// InFlight reports delivered-but-unacknowledged messages on a queue.
func (b *Broker) InFlight(queueName string) int {
	q := b.queue(queueName)
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// sweeper periodically requeues messages whose visibility expired.
func (b *Broker) sweeper() {
	interval := b.visibility / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-b.stopSweep:
			return
		case <-ticker.C:
			b.sweep(time.Now())
		}
	}
}

func (b *Broker) sweep(now time.Time) {
	b.mu.RLock()
	queues := make(map[string]*namedQueue, len(b.queues))
	for name, q := range b.queues {
		queues[name] = q
	}
	b.mu.RUnlock()
	staleCutoff := now.Add(-b.visibility)
	for name, q := range queues {
		var expired []Message
		isReply := strings.HasPrefix(name, replyQueuePrefix)
		q.mu.Lock()
		for id, p := range q.pending {
			if now.After(p.deadline) {
				expired = append(expired, p.msg)
				delete(q.pending, id)
			}
		}
		if isReply {
			// Reply queues are single-consumer and short-lived: a ready
			// reply older than the visibility window means its requester
			// is gone (canceled after the task was pulled) — drop it so
			// abandoned replies cannot accumulate.
			for tag, ln := range q.lanes {
				for e := ln.ready.Front(); e != nil; {
					next := e.Next()
					if e.Value.(Message).enqueued.Before(staleCutoff) {
						ln.ready.Remove(e)
					}
					e = next
				}
				if ln.ready.Len() == 0 {
					q.removeLaneLocked(tag)
				}
			}
		}
		empty := len(q.lanes) == 0 && len(q.pending) == 0 && q.waiters.Len() == 0
		q.mu.Unlock()
		for _, msg := range expired {
			b.deliver(q, msg)
		}
		if isReply && empty && len(expired) == 0 {
			// GC the queue itself once fully idle (its requester either
			// finished — and deleted it already — or abandoned it).
			b.DeleteQueue(name)
		}
	}
}

// Request pushes body on queueName with a fresh reply queue, then waits
// for the reply. It is the synchronous-invocation primitive of §IV-A.
func (b *Broker) Request(queueName string, body []byte, timeout time.Duration) ([]byte, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	reply, err := b.RequestCtx(ctx, queueName, body, "")
	return reply, err == nil
}

// RequestCtx is Request bounded by ctx instead of a flat timeout: the
// wait ends as soon as ctx is canceled or its deadline passes, and the
// error distinguishes the two (ctx.Err()). A ctx with neither deadline
// nor cancel waits indefinitely (polling in visibility-sized windows).
// On early termination the request message is withdrawn from the task
// queue when no consumer has pulled it yet, so canceled work never
// executes needlessly; the per-request reply queue is deleted on every
// exit path (the sweeper collects it if a straggling reply recreates
// it). tenant tags the request's fairness lane on the task queue.
func (b *Broker) RequestCtx(ctx context.Context, queueName string, body []byte, tenant string) ([]byte, error) {
	replyQ := replyQueuePrefix + NewID()
	corr := NewID()
	msgID := b.Push(queueName, body, replyQ, corr, tenant)
	defer b.DeleteQueue(replyQ)
	// With no Done channel, PullCtx needs a finite poll window to block
	// at all; loop forever in visibility-sized slices.
	window := time.Duration(0)
	if ctx.Done() == nil {
		window = b.visibility
	}
	for {
		if err := ctx.Err(); err != nil {
			b.Drop(queueName, msgID)
			return nil, err
		}
		msg, ok := b.PullCtx(ctx, replyQ, window)
		if !ok {
			if window > 0 && ctx.Err() == nil {
				continue // unbounded wait: poll again
			}
			b.Drop(queueName, msgID)
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, context.DeadlineExceeded
		}
		b.Ack(replyQ, msg.ID)
		if msg.CorrelationID == corr {
			return msg.Body, nil
		}
	}
}

// Reply pushes a response for msg onto its ReplyTo queue and acks the
// original. It is a no-op for messages with no ReplyTo. The reply
// inherits the request's tenant tag, so reply-side dequeues are billed
// to the same lane (a reply queue has one consumer — fairness never
// arbitrates it).
func (b *Broker) Reply(msg Message, body []byte) {
	if msg.ReplyTo != "" {
		b.Push(msg.ReplyTo, body, "", msg.CorrelationID, msg.Tenant)
	}
	b.Ack(msg.Queue, msg.ID)
}
