// Package queue implements the ZeroMQ-style task conduit of §IV-A: the
// Management Service "uses a ZeroMQ queue to send tasks to registered
// Task Managers for execution. The queue provides a reliable messaging
// model that ensures tasks are received and executed."
//
// The broker hosts named queues. Producers push messages; consumers pull
// and must acknowledge within a visibility timeout or the message is
// redelivered (at-least-once semantics). Request/reply is layered on top
// with per-message ReplyTo queues, mirroring the paper's flow where Task
// Managers "retrieve waiting tasks from the queue, unpackage the
// request, execute the task, and return the results via the same queue."
package queue

import (
	"container/list"
	"context"
	"crypto/rand"
	"encoding/hex"
	"strings"
	"sync"
	"time"
)

// Message is one queued envelope.
type Message struct {
	// ID is assigned by the broker on enqueue.
	ID string `json:"id"`
	// Queue the message was published to.
	Queue string `json:"queue"`
	// ReplyTo names the queue where a reply should be pushed ("" if
	// no reply is expected).
	ReplyTo string `json:"reply_to,omitempty"`
	// CorrelationID links a reply to its request.
	CorrelationID string `json:"correlation_id,omitempty"`
	// Body is the opaque payload.
	Body []byte `json:"body"`
	// Attempt counts deliveries (1 on first delivery).
	Attempt int `json:"attempt"`
	// enqueued is stamped by Push; the sweeper uses it to expire
	// stranded replies on abandoned reply queues.
	enqueued time.Time
}

// replyQueuePrefix names the per-request reply queues; the sweeper
// garbage-collects them (see sweep) so canceled or completed requests
// do not leak queue state.
const replyQueuePrefix = "reply."

// NewID returns a random 128-bit hex identifier.
func NewID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("queue: crypto/rand failed: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

type pendingMsg struct {
	msg      Message
	deadline time.Time
}

type namedQueue struct {
	mu      sync.Mutex
	ready   *list.List // of Message
	pending map[string]*pendingMsg
	waiters *list.List // of chan Message
}

func newNamedQueue() *namedQueue {
	return &namedQueue{ready: list.New(), pending: make(map[string]*pendingMsg), waiters: list.New()}
}

// Broker is an in-process message broker. Remote access goes through
// the rpc-based Endpoint in transport.go; in-process components (tests,
// single-binary deployments) use it directly.
type Broker struct {
	mu     sync.RWMutex
	queues map[string]*namedQueue

	visibility time.Duration
	stopSweep  chan struct{}
	sweepOnce  sync.Once
}

// NewBroker creates a broker whose unacknowledged deliveries become
// visible again after the given timeout.
func NewBroker(visibility time.Duration) *Broker {
	if visibility <= 0 {
		visibility = 30 * time.Second
	}
	b := &Broker{
		queues:     make(map[string]*namedQueue),
		visibility: visibility,
		stopSweep:  make(chan struct{}),
	}
	go b.sweeper()
	return b
}

// Close stops the redelivery sweeper.
func (b *Broker) Close() { b.sweepOnce.Do(func() { close(b.stopSweep) }) }

func (b *Broker) queue(name string) *namedQueue {
	b.mu.RLock()
	q, ok := b.queues[name]
	b.mu.RUnlock()
	if ok {
		return q
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if q, ok = b.queues[name]; ok {
		return q
	}
	q = newNamedQueue()
	b.queues[name] = q
	return q
}

// Push enqueues body on the named queue and returns the message ID.
func (b *Broker) Push(queueName string, body []byte, replyTo, correlationID string) string {
	msg := Message{
		ID:            NewID(),
		Queue:         queueName,
		ReplyTo:       replyTo,
		CorrelationID: correlationID,
		Body:          body,
		enqueued:      time.Now(),
	}
	b.deliver(b.queue(queueName), msg)
	return msg.ID
}

// DeleteQueue removes an idle queue — no ready messages, no in-flight
// deliveries, no parked consumers — from the broker, reporting whether
// it was removed. The ready check matters: a reply delivered between a
// requester's polls must not be deleted with the queue (the requester
// would then wait out its full deadline for work that completed).
// Request sides call it on their reply queues when done; a reply
// racing the deletion simply recreates the queue and the sweeper
// collects it.
func (b *Broker) DeleteQueue(name string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	q, ok := b.queues[name]
	if !ok {
		return false
	}
	q.mu.Lock()
	idle := q.ready.Len() == 0 && len(q.pending) == 0 && q.waiters.Len() == 0
	q.mu.Unlock()
	if !idle {
		return false
	}
	delete(b.queues, name)
	return true
}

func (b *Broker) deliver(q *namedQueue, msg Message) {
	q.mu.Lock()
	// Hand directly to a waiting consumer when one is parked.
	for q.waiters.Len() > 0 {
		front := q.waiters.Front()
		ch := front.Value.(chan Message)
		q.waiters.Remove(front)
		msg.Attempt++
		q.pending[msg.ID] = &pendingMsg{msg: msg, deadline: time.Now().Add(b.visibility)}
		q.mu.Unlock()
		ch <- msg
		return
	}
	q.ready.PushBack(msg)
	q.mu.Unlock()
}

// Pull waits up to timeout for a message on the named queue. ok is false
// on timeout. Delivered messages must be Ack'd before the visibility
// timeout or they are requeued.
func (b *Broker) Pull(queueName string, timeout time.Duration) (Message, bool) {
	return b.PullCtx(context.Background(), queueName, timeout)
}

// PullCtx is Pull bounded additionally by ctx: it returns early (ok
// false) when ctx ends, so a canceled consumer never sits out its full
// poll timeout. A timeout <= 0 means "bounded by ctx alone"; with a
// background ctx that degenerates to the old non-blocking poll.
func (b *Broker) PullCtx(ctx context.Context, queueName string, timeout time.Duration) (Message, bool) {
	q := b.queue(queueName)
	q.mu.Lock()
	if q.ready.Len() > 0 {
		front := q.ready.Front()
		msg := front.Value.(Message)
		q.ready.Remove(front)
		msg.Attempt++
		q.pending[msg.ID] = &pendingMsg{msg: msg, deadline: time.Now().Add(b.visibility)}
		q.mu.Unlock()
		return msg, true
	}
	if timeout <= 0 && ctx.Done() == nil {
		q.mu.Unlock()
		return Message{}, false
	}
	ch := make(chan Message, 1)
	elem := q.waiters.PushBack(ch)
	q.mu.Unlock()

	var timerC <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timerC = timer.C
	}
	abort := func() (Message, bool) {
		q.mu.Lock()
		// Remove our waiter; a concurrent deliver may have already
		// removed it and sent — check the channel once more.
		q.waiters.Remove(elem)
		q.mu.Unlock()
		select {
		case msg := <-ch:
			return msg, true
		default:
			return Message{}, false
		}
	}
	select {
	case msg := <-ch:
		return msg, true
	case <-timerC:
		return abort()
	case <-ctx.Done():
		return abort()
	}
}

// Drop removes a not-yet-delivered message from a queue's ready list,
// reporting whether it was found. A canceled requester uses it to
// withdraw its task before any consumer picks it up; once delivered
// (pending) the message is the consumer's and Drop reports false.
func (b *Broker) Drop(queueName, msgID string) bool {
	q := b.queue(queueName)
	q.mu.Lock()
	defer q.mu.Unlock()
	for e := q.ready.Front(); e != nil; e = e.Next() {
		if e.Value.(Message).ID == msgID {
			q.ready.Remove(e)
			return true
		}
	}
	return false
}

// Purge withdraws every message from a queue — ready AND delivered-but-
// unacknowledged — returning how many were removed. It is the
// dead-consumer cleanup: when a Task Manager is declared lost or
// deregistered, tasks it claimed (pulled, never acked) must not sit out
// the visibility timeout only to be redelivered into a queue nobody
// consumes, and tasks still ready must not strand their requesters.
// Parked consumers are left in place: a revived consumer simply resumes
// on an empty queue.
func (b *Broker) Purge(queueName string) int {
	q := b.queue(queueName)
	q.mu.Lock()
	defer q.mu.Unlock()
	n := q.ready.Len() + len(q.pending)
	q.ready.Init()
	q.pending = make(map[string]*pendingMsg)
	return n
}

// Ack confirms processing of a delivered message, removing it from the
// redelivery set. It reports whether the message was pending.
func (b *Broker) Ack(queueName, msgID string) bool {
	q := b.queue(queueName)
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.pending[msgID]; !ok {
		return false
	}
	delete(q.pending, msgID)
	return true
}

// Nack returns a delivered message to the queue immediately.
func (b *Broker) Nack(queueName, msgID string) bool {
	q := b.queue(queueName)
	q.mu.Lock()
	p, ok := q.pending[msgID]
	if !ok {
		q.mu.Unlock()
		return false
	}
	delete(q.pending, msgID)
	q.mu.Unlock()
	b.deliver(q, p.msg)
	return true
}

// Queues reports how many named queues the broker currently holds —
// the observability hook for reply-queue garbage collection.
func (b *Broker) Queues() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.queues)
}

// Len reports ready (not in-flight) messages on a queue.
func (b *Broker) Len(queueName string) int {
	q := b.queue(queueName)
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.ready.Len()
}

// InFlight reports delivered-but-unacknowledged messages on a queue.
func (b *Broker) InFlight(queueName string) int {
	q := b.queue(queueName)
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// sweeper periodically requeues messages whose visibility expired.
func (b *Broker) sweeper() {
	interval := b.visibility / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-b.stopSweep:
			return
		case <-ticker.C:
			b.sweep(time.Now())
		}
	}
}

func (b *Broker) sweep(now time.Time) {
	b.mu.RLock()
	queues := make(map[string]*namedQueue, len(b.queues))
	for name, q := range b.queues {
		queues[name] = q
	}
	b.mu.RUnlock()
	staleCutoff := now.Add(-b.visibility)
	for name, q := range queues {
		var expired []Message
		isReply := strings.HasPrefix(name, replyQueuePrefix)
		q.mu.Lock()
		for id, p := range q.pending {
			if now.After(p.deadline) {
				expired = append(expired, p.msg)
				delete(q.pending, id)
			}
		}
		if isReply {
			// Reply queues are single-consumer and short-lived: a ready
			// reply older than the visibility window means its requester
			// is gone (canceled after the task was pulled) — drop it so
			// abandoned replies cannot accumulate.
			for e := q.ready.Front(); e != nil; {
				next := e.Next()
				if e.Value.(Message).enqueued.Before(staleCutoff) {
					q.ready.Remove(e)
				}
				e = next
			}
		}
		empty := q.ready.Len() == 0 && len(q.pending) == 0 && q.waiters.Len() == 0
		q.mu.Unlock()
		for _, msg := range expired {
			b.deliver(q, msg)
		}
		if isReply && empty && len(expired) == 0 {
			// GC the queue itself once fully idle (its requester either
			// finished — and deleted it already — or abandoned it).
			b.DeleteQueue(name)
		}
	}
}

// Request pushes body on queueName with a fresh reply queue, then waits
// for the reply. It is the synchronous-invocation primitive of §IV-A.
func (b *Broker) Request(queueName string, body []byte, timeout time.Duration) ([]byte, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	reply, err := b.RequestCtx(ctx, queueName, body)
	return reply, err == nil
}

// RequestCtx is Request bounded by ctx instead of a flat timeout: the
// wait ends as soon as ctx is canceled or its deadline passes, and the
// error distinguishes the two (ctx.Err()). A ctx with neither deadline
// nor cancel waits indefinitely (polling in visibility-sized windows).
// On early termination the request message is withdrawn from the task
// queue when no consumer has pulled it yet, so canceled work never
// executes needlessly; the per-request reply queue is deleted on every
// exit path (the sweeper collects it if a straggling reply recreates
// it).
func (b *Broker) RequestCtx(ctx context.Context, queueName string, body []byte) ([]byte, error) {
	replyQ := replyQueuePrefix + NewID()
	corr := NewID()
	msgID := b.Push(queueName, body, replyQ, corr)
	defer b.DeleteQueue(replyQ)
	// With no Done channel, PullCtx needs a finite poll window to block
	// at all; loop forever in visibility-sized slices.
	window := time.Duration(0)
	if ctx.Done() == nil {
		window = b.visibility
	}
	for {
		if err := ctx.Err(); err != nil {
			b.Drop(queueName, msgID)
			return nil, err
		}
		msg, ok := b.PullCtx(ctx, replyQ, window)
		if !ok {
			if window > 0 && ctx.Err() == nil {
				continue // unbounded wait: poll again
			}
			b.Drop(queueName, msgID)
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, context.DeadlineExceeded
		}
		b.Ack(replyQ, msg.ID)
		if msg.CorrelationID == corr {
			return msg.Body, nil
		}
	}
}

// Reply pushes a response for msg onto its ReplyTo queue and acks the
// original. It is a no-op for messages with no ReplyTo.
func (b *Broker) Reply(msg Message, body []byte) {
	if msg.ReplyTo != "" {
		b.Push(msg.ReplyTo, body, "", msg.CorrelationID)
	}
	b.Ack(msg.Queue, msg.ID)
}
