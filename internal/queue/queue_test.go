package queue

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPushPull(t *testing.T) {
	b := NewBroker(time.Second)
	defer b.Close()
	id := b.Push("tasks", []byte("work"), "", "", "")
	if id == "" {
		t.Fatal("Push should return an ID")
	}
	msg, ok := b.Pull("tasks", 0)
	if !ok {
		t.Fatal("Pull should find the message")
	}
	if string(msg.Body) != "work" || msg.ID != id || msg.Attempt != 1 {
		t.Fatalf("wrong message: %+v", msg)
	}
	if !b.Ack("tasks", msg.ID) {
		t.Fatal("Ack should succeed")
	}
}

func TestPullTimeout(t *testing.T) {
	b := NewBroker(time.Second)
	defer b.Close()
	start := time.Now()
	_, ok := b.Pull("empty", 50*time.Millisecond)
	if ok {
		t.Fatal("Pull on empty queue should time out")
	}
	if time.Since(start) < 45*time.Millisecond {
		t.Fatal("Pull returned before timeout")
	}
}

func TestPullWakesWaiter(t *testing.T) {
	b := NewBroker(time.Second)
	defer b.Close()
	done := make(chan Message, 1)
	go func() {
		msg, ok := b.Pull("tasks", 2*time.Second)
		if ok {
			done <- msg
		}
	}()
	time.Sleep(20 * time.Millisecond)
	b.Push("tasks", []byte("late"), "", "", "")
	select {
	case msg := <-done:
		if string(msg.Body) != "late" {
			t.Fatalf("wrong body %q", msg.Body)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter not woken")
	}
}

func TestVisibilityTimeoutRedelivers(t *testing.T) {
	b := NewBroker(50 * time.Millisecond)
	defer b.Close()
	b.Push("tasks", []byte("flaky"), "", "", "")
	msg, ok := b.Pull("tasks", 0)
	if !ok {
		t.Fatal("first delivery missing")
	}
	// Do not ack; expect redelivery.
	msg2, ok := b.Pull("tasks", time.Second)
	if !ok {
		t.Fatal("message was not redelivered")
	}
	if msg2.ID != msg.ID {
		t.Fatal("redelivered message has different ID")
	}
	if msg2.Attempt != 2 {
		t.Fatalf("attempt should be 2, got %d", msg2.Attempt)
	}
	b.Ack("tasks", msg2.ID)
	if _, ok := b.Pull("tasks", 100*time.Millisecond); ok {
		t.Fatal("acked message should not be redelivered")
	}
}

func TestNackImmediateRequeue(t *testing.T) {
	b := NewBroker(time.Hour)
	defer b.Close()
	b.Push("tasks", []byte("retry-me"), "", "", "")
	msg, _ := b.Pull("tasks", 0)
	if !b.Nack("tasks", msg.ID) {
		t.Fatal("Nack should succeed")
	}
	msg2, ok := b.Pull("tasks", 0)
	if !ok || string(msg2.Body) != "retry-me" {
		t.Fatal("nacked message should be immediately available")
	}
}

func TestAckUnknown(t *testing.T) {
	b := NewBroker(time.Second)
	defer b.Close()
	if b.Ack("tasks", "nope") {
		t.Fatal("Ack of unknown message should be false")
	}
	if b.Nack("tasks", "nope") {
		t.Fatal("Nack of unknown message should be false")
	}
}

func TestFIFOOrdering(t *testing.T) {
	b := NewBroker(time.Second)
	defer b.Close()
	for i := 0; i < 20; i++ {
		b.Push("tasks", []byte{byte(i)}, "", "", "")
	}
	for i := 0; i < 20; i++ {
		msg, ok := b.Pull("tasks", 0)
		if !ok || msg.Body[0] != byte(i) {
			t.Fatalf("FIFO violated at %d: %+v", i, msg)
		}
		b.Ack("tasks", msg.ID)
	}
}

func TestRequestReply(t *testing.T) {
	b := NewBroker(time.Second)
	defer b.Close()
	go func() {
		msg, ok := b.Pull("svc", 2*time.Second)
		if !ok {
			return
		}
		b.Reply(msg, append([]byte("echo:"), msg.Body...))
	}()
	out, ok := b.Request("svc", []byte("hi"), 2*time.Second)
	if !ok {
		t.Fatal("Request timed out")
	}
	if string(out) != "echo:hi" {
		t.Fatalf("wrong reply %q", out)
	}
}

func TestRequestTimeout(t *testing.T) {
	b := NewBroker(time.Second)
	defer b.Close()
	if _, ok := b.Request("nobody-home", []byte("x"), 50*time.Millisecond); ok {
		t.Fatal("Request with no consumer should time out")
	}
}

// Property: every pushed message is eventually delivered exactly once
// when consumers ack promptly (at-least-once collapses to exactly-once
// without failures).
func TestAllMessagesDelivered(t *testing.T) {
	b := NewBroker(time.Minute)
	defer b.Close()
	const n = 200
	const consumers = 8
	seen := make(map[string]int)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				msg, ok := b.Pull("bulk", 200*time.Millisecond)
				if !ok {
					return
				}
				mu.Lock()
				seen[string(msg.Body)]++
				mu.Unlock()
				b.Ack("bulk", msg.ID)
			}
		}()
	}
	for i := 0; i < n; i++ {
		b.Push("bulk", []byte(fmt.Sprintf("m%d", i)), "", "", "")
	}
	wg.Wait()
	if len(seen) != n {
		t.Fatalf("delivered %d distinct messages, want %d", len(seen), n)
	}
	for k, v := range seen {
		if v != 1 {
			t.Fatalf("message %s delivered %d times", k, v)
		}
	}
}

func TestQueueIsolation(t *testing.T) {
	b := NewBroker(time.Second)
	defer b.Close()
	b.Push("a", []byte("for-a"), "", "", "")
	if _, ok := b.Pull("b", 0); ok {
		t.Fatal("queue b should be empty")
	}
	if msg, ok := b.Pull("a", 0); !ok || string(msg.Body) != "for-a" {
		t.Fatal("queue a should hold its message")
	}
}

func TestLenAndInFlight(t *testing.T) {
	b := NewBroker(time.Minute)
	defer b.Close()
	b.Push("q", []byte("1"), "", "", "")
	b.Push("q", []byte("2"), "", "", "")
	if b.Len("q") != 2 || b.InFlight("q") != 0 {
		t.Fatalf("want 2 ready/0 inflight, got %d/%d", b.Len("q"), b.InFlight("q"))
	}
	msg, _ := b.Pull("q", 0)
	if b.Len("q") != 1 || b.InFlight("q") != 1 {
		t.Fatalf("want 1 ready/1 inflight, got %d/%d", b.Len("q"), b.InFlight("q"))
	}
	b.Ack("q", msg.ID)
	if b.InFlight("q") != 0 {
		t.Fatal("ack should clear inflight")
	}
}

func TestNewIDUnique(t *testing.T) {
	f := func(_ int) bool { return NewID() != NewID() }
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// --- transport tests ---------------------------------------------------

func startTransport(t *testing.T, b *Broker) *Client {
	t.Helper()
	srv := NewServer(b)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	t.Cleanup(func() { c.Close() })
	return c
}

func TestTransportPushPullAck(t *testing.T) {
	b := NewBroker(time.Minute)
	defer b.Close()
	c := startTransport(t, b)

	id, err := c.Push("remote", []byte("payload"), "", "", "")
	if err != nil || id == "" {
		t.Fatalf("push failed: %v", err)
	}
	msg, ok, err := c.Pull("remote", time.Second)
	if err != nil || !ok {
		t.Fatalf("pull failed: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(msg.Body, []byte("payload")) {
		t.Fatalf("wrong body %q", msg.Body)
	}
	if err := c.Ack("remote", msg.ID); err != nil {
		t.Fatal(err)
	}
	if b.InFlight("remote") != 0 {
		t.Fatal("remote ack not applied")
	}
}

func TestTransportRequestReply(t *testing.T) {
	b := NewBroker(time.Minute)
	defer b.Close()
	c := startTransport(t, b)

	// Remote consumer loop over a second client.
	consumer := startTransport(t, b)
	go func() {
		msg, ok, err := consumer.Pull("svc", 2*time.Second)
		if err != nil || !ok {
			return
		}
		consumer.Reply(msg, []byte("pong")) //nolint:errcheck
	}()

	out, ok, err := c.Request("svc", []byte("ping"), 2*time.Second)
	if err != nil || !ok {
		t.Fatalf("request failed: ok=%v err=%v", ok, err)
	}
	if string(out) != "pong" {
		t.Fatalf("wrong reply %q", out)
	}
}

func TestTransportPullTimeout(t *testing.T) {
	b := NewBroker(time.Minute)
	defer b.Close()
	c := startTransport(t, b)
	_, ok, err := c.Pull("empty", 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("pull on empty remote queue should time out")
	}
}

// TestRequestCleansReplyQueue: a completed request must not leave its
// per-request reply queue behind in the broker (the map would otherwise
// grow by one entry per request, forever).
func TestRequestCleansReplyQueue(t *testing.T) {
	b := NewBroker(time.Minute)
	defer b.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		msg, ok := b.Pull("work", 2*time.Second)
		if !ok {
			t.Error("no request arrived")
			return
		}
		b.Reply(msg, []byte("pong"))
	}()
	if _, ok := b.Request("work", []byte("ping"), 2*time.Second); !ok {
		t.Fatal("request failed")
	}
	<-done
	if n := b.Queues(); n != 1 { // only "work" remains
		t.Fatalf("reply queue leaked: %d queues, want 1", n)
	}
}

// TestCanceledRequestReplyGC: a request canceled after its task was
// pulled strands the late reply; the sweeper must expire it and collect
// the orphaned reply queue.
func TestCanceledRequestReplyGC(t *testing.T) {
	b := NewBroker(50 * time.Millisecond) // fast visibility -> fast GC
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := b.RequestCtx(ctx, "work", []byte("ping"), "")
		errCh <- err
	}()
	msg, ok := b.Pull("work", 2*time.Second) // consumer claims the task
	if !ok {
		t.Fatal("no request arrived")
	}
	cancel()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	b.Reply(msg, []byte("too late")) // recreates the reply queue
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if b.Queues() == 1 { // only "work" survives
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("stranded reply queue not collected: %d queues", b.Queues())
}

// TestRequestCtxUnboundedContext: a ctx with neither deadline nor
// cancel must wait for the reply, not fail immediately.
func TestRequestCtxUnboundedContext(t *testing.T) {
	b := NewBroker(time.Minute)
	defer b.Close()
	go func() {
		msg, ok := b.Pull("work", 2*time.Second)
		if ok {
			time.Sleep(50 * time.Millisecond)
			b.Reply(msg, []byte("pong"))
		}
	}()
	reply, err := b.RequestCtx(context.Background(), "work", []byte("ping"), "")
	if err != nil || string(reply) != "pong" {
		t.Fatalf("unbounded RequestCtx: %q %v", reply, err)
	}
}

// TestPurge: purging a queue withdraws ready AND claimed-but-unacked
// messages (the dead-consumer cleanup), leaves parked consumers alone,
// and prevents the visibility sweeper from resurrecting claimed tasks.
func TestPurge(t *testing.T) {
	b := NewBroker(50 * time.Millisecond)
	defer b.Close()
	b.Push("tasks", []byte("claimed"), "", "", "")
	b.Push("tasks", []byte("ready-1"), "", "", "")
	b.Push("tasks", []byte("ready-2"), "", "", "")
	if _, ok := b.Pull("tasks", time.Second); !ok { // claim one, never ack
		t.Fatal("no message to claim")
	}
	if n := b.Purge("tasks"); n != 3 {
		t.Fatalf("purged %d, want 3 (1 claimed + 2 ready)", n)
	}
	if b.Len("tasks") != 0 || b.InFlight("tasks") != 0 {
		t.Fatalf("queue not empty after purge: ready=%d inflight=%d", b.Len("tasks"), b.InFlight("tasks"))
	}
	// The claimed message's visibility timeout must NOT redeliver it.
	time.Sleep(120 * time.Millisecond)
	if b.Len("tasks") != 0 {
		t.Fatal("purged claimed message was redelivered by the sweeper")
	}
	// The queue still works for new traffic.
	b.Push("tasks", []byte("fresh"), "", "", "")
	if msg, ok := b.Pull("tasks", time.Second); !ok || string(msg.Body) != "fresh" {
		t.Fatalf("post-purge delivery broken: %v %v", msg, ok)
	}
}
