package queue

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/rpc"
)

// Transport exposes a Broker over the binary RPC protocol so that the
// Management Service (EC2) and Task Managers (Cooley) can share it
// across netsim-shaped links, as in the paper's deployment.

// Server wraps a broker for remote access.
type Server struct {
	broker *Broker
	rpc    *rpc.Server
}

// NewServer returns a broker RPC server ready to Serve.
func NewServer(b *Broker) *Server {
	s := &Server{broker: b, rpc: rpc.NewServer()}
	s.rpc.Handle("queue.push", s.handlePush)
	s.rpc.Handle("queue.pull", s.handlePull)
	s.rpc.Handle("queue.ack", s.handleAck)
	s.rpc.Handle("queue.nack", s.handleNack)
	s.rpc.Handle("queue.delete", s.handleDelete)
	return s
}

// Serve accepts connections on l until Close.
func (s *Server) Serve(l net.Listener) error { return s.rpc.Serve(l) }

// Close stops the RPC server (the broker itself is owned by the caller).
func (s *Server) Close() error { return s.rpc.Close() }

type pushReq struct {
	Queue         string `json:"queue"`
	Body          []byte `json:"body"`
	ReplyTo       string `json:"reply_to"`
	CorrelationID string `json:"correlation_id"`
	Tenant        string `json:"tenant,omitempty"`
}

type pullReq struct {
	Queue     string `json:"queue"`
	TimeoutMS int64  `json:"timeout_ms"`
}

type pullResp struct {
	OK  bool    `json:"ok"`
	Msg Message `json:"msg"`
}

type ackReq struct {
	Queue string `json:"queue"`
	MsgID string `json:"msg_id"`
}

func (s *Server) handlePush(_ context.Context, payload []byte) ([]byte, error) {
	var req pushReq
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, fmt.Errorf("queue: bad push request: %w", err)
	}
	id := s.broker.Push(req.Queue, req.Body, req.ReplyTo, req.CorrelationID, req.Tenant)
	return json.Marshal(map[string]string{"id": id})
}

func (s *Server) handlePull(_ context.Context, payload []byte) ([]byte, error) {
	var req pullReq
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, fmt.Errorf("queue: bad pull request: %w", err)
	}
	msg, ok := s.broker.Pull(req.Queue, time.Duration(req.TimeoutMS)*time.Millisecond)
	return json.Marshal(pullResp{OK: ok, Msg: msg})
}

func (s *Server) handleAck(_ context.Context, payload []byte) ([]byte, error) {
	var req ackReq
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, fmt.Errorf("queue: bad ack request: %w", err)
	}
	ok := s.broker.Ack(req.Queue, req.MsgID)
	return json.Marshal(map[string]bool{"ok": ok})
}

func (s *Server) handleNack(_ context.Context, payload []byte) ([]byte, error) {
	var req ackReq
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, fmt.Errorf("queue: bad nack request: %w", err)
	}
	ok := s.broker.Nack(req.Queue, req.MsgID)
	return json.Marshal(map[string]bool{"ok": ok})
}

func (s *Server) handleDelete(_ context.Context, payload []byte) ([]byte, error) {
	var req ackReq // only Queue is used
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, fmt.Errorf("queue: bad delete request: %w", err)
	}
	ok := s.broker.DeleteQueue(req.Queue)
	return json.Marshal(map[string]bool{"ok": ok})
}

// Client gives remote components the Broker API over a (possibly
// netsim-shaped) connection.
type Client struct {
	rc *rpc.Client
}

// NewClient wraps an established connection to a queue Server.
func NewClient(conn net.Conn) *Client { return &Client{rc: rpc.NewClient(conn)} }

// Close tears down the connection.
func (c *Client) Close() error { return c.rc.Close() }

// Push enqueues remotely; it returns the broker-assigned message ID.
// tenant tags the fairness lane ("" = default).
func (c *Client) Push(queueName string, body []byte, replyTo, correlationID, tenant string) (string, error) {
	payload, err := json.Marshal(pushReq{Queue: queueName, Body: body, ReplyTo: replyTo, CorrelationID: correlationID, Tenant: tenant})
	if err != nil {
		return "", err
	}
	out, err := c.rc.Call(context.Background(), "queue.push", payload)
	if err != nil {
		return "", err
	}
	var resp map[string]string
	if err := json.Unmarshal(out, &resp); err != nil {
		return "", err
	}
	return resp["id"], nil
}

// Pull long-polls the remote queue. ok is false on timeout.
func (c *Client) Pull(queueName string, timeout time.Duration) (Message, bool, error) {
	return c.PullCtx(context.Background(), queueName, timeout)
}

// PullCtx is Pull bounded additionally by ctx: cancellation aborts the
// in-flight RPC instead of waiting out the poll timeout.
func (c *Client) PullCtx(ctx context.Context, queueName string, timeout time.Duration) (Message, bool, error) {
	payload, err := json.Marshal(pullReq{Queue: queueName, TimeoutMS: timeout.Milliseconds()})
	if err != nil {
		return Message{}, false, err
	}
	// Give the RPC itself headroom beyond the poll timeout.
	ctx, cancel := context.WithTimeout(ctx, timeout+10*time.Second)
	defer cancel()
	out, err := c.rc.Call(ctx, "queue.pull", payload)
	if err != nil {
		return Message{}, false, err
	}
	var resp pullResp
	if err := json.Unmarshal(out, &resp); err != nil {
		return Message{}, false, err
	}
	return resp.Msg, resp.OK, nil
}

// Ack confirms processing of a delivered message.
func (c *Client) Ack(queueName, msgID string) error {
	payload, _ := json.Marshal(ackReq{Queue: queueName, MsgID: msgID})
	_, err := c.rc.Call(context.Background(), "queue.ack", payload)
	return err
}

// Nack requeues a delivered message immediately.
func (c *Client) Nack(queueName, msgID string) error {
	payload, _ := json.Marshal(ackReq{Queue: queueName, MsgID: msgID})
	_, err := c.rc.Call(context.Background(), "queue.nack", payload)
	return err
}

// Reply pushes a response onto msg's ReplyTo queue and acks the
// original, inheriting the request's tenant tag.
func (c *Client) Reply(msg Message, body []byte) error {
	if msg.ReplyTo != "" {
		if _, err := c.Push(msg.ReplyTo, body, "", msg.CorrelationID, msg.Tenant); err != nil {
			return err
		}
	}
	return c.Ack(msg.Queue, msg.ID)
}

// Request pushes body and waits for the correlated reply.
func (c *Client) Request(queueName string, body []byte, timeout time.Duration) ([]byte, bool, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	reply, err := c.RequestCtx(ctx, queueName, body, "")
	switch {
	case err == nil:
		return reply, true, nil
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return nil, false, nil
	default:
		return nil, false, err
	}
}

// DeleteQueue removes an idle remote queue (reply-queue cleanup).
func (c *Client) DeleteQueue(name string) error {
	payload, _ := json.Marshal(ackReq{Queue: name})
	_, err := c.rc.Call(context.Background(), "queue.delete", payload)
	return err
}

// RequestCtx pushes body and waits for the correlated reply until ctx
// ends; a context termination is returned as ctx.Err() so callers can
// distinguish cancellation from deadline expiry or transport failure.
// The per-request reply queue is deleted on exit (best effort — the
// broker's sweeper collects strays).
func (c *Client) RequestCtx(ctx context.Context, queueName string, body []byte, tenant string) ([]byte, error) {
	replyQ := replyQueuePrefix + NewID()
	corr := NewID()
	if _, err := c.Push(queueName, body, replyQ, corr, tenant); err != nil {
		return nil, err
	}
	defer c.DeleteQueue(replyQ) //nolint:errcheck — sweeper backstops
	for {
		remaining := pollWindow
		if deadline, ok := ctx.Deadline(); ok {
			remaining = time.Until(deadline)
			if remaining <= 0 {
				return nil, context.DeadlineExceeded
			}
			if remaining > pollWindow {
				remaining = pollWindow
			}
		}
		msg, ok, err := c.PullCtx(ctx, replyQ, remaining)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			return nil, err
		}
		if !ok {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			continue
		}
		if err := c.Ack(replyQ, msg.ID); err != nil {
			return nil, err
		}
		if msg.CorrelationID == corr {
			return msg.Body, nil
		}
	}
}

// pollWindow bounds one remote reply poll so an unbounded-context
// RequestCtx still re-checks cancellation periodically.
const pollWindow = 30 * time.Second
