package rpc

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"testing"
)

func startEcho(b *testing.B) *Client {
	b.Helper()
	s := NewServer()
	s.Handle("echo", func(_ context.Context, p []byte) ([]byte, error) { return p, nil })
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go s.Serve(l) //nolint:errcheck
	b.Cleanup(func() { s.Close() })
	c, err := Dial(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

// BenchmarkGRPCStyleCall measures the binary framed protocol round trip
// with a CIFAR-sized float tensor — the per-request wire cost of the
// Fig. 8 "gRPC" path.
func BenchmarkGRPCStyleCall(b *testing.B) {
	c := startEcho(b)
	payload := EncodeFloats(make([]float32, 32*32*3))
	ctx := context.Background()
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(ctx, "echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJSONEncodeTensor isolates the "REST" path's JSON cost for
// the same tensor: the mechanism behind the gRPC-vs-REST gap.
func BenchmarkJSONEncodeTensor(b *testing.B) {
	vec := make([]float64, 32*32*3)
	for i := range vec {
		vec[i] = float64(i) / 3072
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := json.Marshal(vec)
		if err != nil {
			b.Fatal(err)
		}
		var back []float64
		if err := json.Unmarshal(data, &back); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBinaryEncodeTensor is the binary counterpart.
func BenchmarkBinaryEncodeTensor(b *testing.B) {
	vec := make([]float32, 32*32*3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeFloats(EncodeFloats(vec)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConcurrentCalls(b *testing.B) {
	c := startEcho(b)
	payload := []byte("ping")
	ctx := context.Background()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.Call(ctx, "echo", payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFrameRoundTrip isolates the framing layer itself — encode a
// frame, decode it back through the pooled server read path — so the
// buffer pool's allocs/op effect is visible without scheduler or socket
// noise. Steady state should be ~0 allocs/op for pooled-size frames.
func BenchmarkFrameRoundTrip(b *testing.B) {
	payload := EncodeFloats(make([]float32, 32*32*3))
	f := frame{typ: frameRequest, id: 7, method: "echo", payload: payload}
	var buf bytes.Buffer
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := writeFrame(&buf, f); err != nil {
			b.Fatal(err)
		}
		g, err := readFramePooled(&buf)
		if err != nil {
			b.Fatal(err)
		}
		recycleFrame(&g)
	}
}
