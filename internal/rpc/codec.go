package rpc

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
)

// The binary tensor codec is the "gRPC" payload format: float32 vectors
// travel as raw little-endian bytes, the way TensorFlow Serving's
// PredictRequest protobuf carries tensor content. The JSON codec is the
// "REST" format: the same floats rendered base-10 inside a JSON array,
// which is genuinely slower to encode, bigger on the wire and slower to
// parse — the mechanism behind the gRPC-vs-REST gap in Fig. 8.

// EncodeFloats serializes a float32 slice with a length prefix.
func EncodeFloats(v []float32) []byte {
	buf := make([]byte, 4+4*len(v))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(v)))
	for i, f := range v {
		binary.LittleEndian.PutUint32(buf[4+4*i:], math.Float32bits(f))
	}
	return buf
}

// DecodeFloats parses a payload produced by EncodeFloats.
func DecodeFloats(p []byte) ([]float32, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("rpc: float payload too short (%d bytes)", len(p))
	}
	n := binary.LittleEndian.Uint32(p[0:4])
	if int(n) > (len(p)-4)/4 {
		return nil, fmt.Errorf("rpc: float payload declares %d elements, has %d bytes", n, len(p)-4)
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(p[4+4*i:]))
	}
	return out, nil
}

// EncodeJSON marshals v; panics are never used — errors propagate.
func EncodeJSON(v any) ([]byte, error) { return json.Marshal(v) }

// DecodeJSON unmarshals p into v.
func DecodeJSON(p []byte, v any) error { return json.Unmarshal(p, v) }

// --- REST helpers -----------------------------------------------------

// WriteJSON writes v as a JSON response with the given status code.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck — client gone
}

// WriteError writes a JSON error envelope.
func WriteError(w http.ResponseWriter, status int, format string, args ...any) {
	WriteJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// ReadJSON decodes a request body into v, limited to MaxFrameSize.
func ReadJSON(r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxFrameSize))
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.UseNumber()
	return dec.Decode(v)
}

// PostJSON issues a JSON POST with the given client and decodes the JSON
// response into out (if out is non-nil). Non-2xx responses are returned
// as errors carrying the server's error envelope when present.
func PostJSON(client *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxFrameSize))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var env struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &env) == nil && env.Error != "" {
			return fmt.Errorf("http %d: %s", resp.StatusCode, env.Error)
		}
		return fmt.Errorf("http %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// GetJSON issues a GET and decodes the JSON response into out.
func GetJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxFrameSize))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("http %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	return json.Unmarshal(data, out)
}
