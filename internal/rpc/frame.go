// Package rpc provides the two wire protocols the paper's serving
// systems compare (§V-B5): a gRPC-like binary framed RPC with persistent
// multiplexed connections (used by TensorFlow Serving's low-latency API
// and by in-cluster component links) and REST/JSON-over-HTTP helpers
// (used by TFS-REST, SageMaker and the DLHub Management Service API).
//
// The binary protocol deliberately mirrors gRPC's essential properties:
// length-prefixed frames on a long-lived connection, request/response
// multiplexing by stream id, a compact method name, and binary payloads.
// JSON/HTTP pays real parsing and base-10 float costs, so the gRPC<REST
// gap observed in Fig. 8 emerges from genuine work, not injected sleeps.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame types.
const (
	frameRequest  = 1
	frameResponse = 2
	frameError    = 3
)

// MaxFrameSize bounds a single frame (64 MiB) to catch corrupt lengths.
const MaxFrameSize = 64 << 20

// ErrFrameTooLarge is returned when a frame header declares a length
// beyond MaxFrameSize.
var ErrFrameTooLarge = errors.New("rpc: frame exceeds maximum size")

// frame is the unit of exchange: 4-byte big-endian total length,
// 1-byte type, 8-byte stream id, 2-byte method length, method bytes,
// payload bytes.
type frame struct {
	typ     byte
	id      uint64
	method  string
	payload []byte
}

func writeFrame(w io.Writer, f frame) error {
	if len(f.method) > 0xFFFF {
		return fmt.Errorf("rpc: method name too long (%d bytes)", len(f.method))
	}
	total := 1 + 8 + 2 + len(f.method) + len(f.payload)
	if total > MaxFrameSize {
		return ErrFrameTooLarge
	}
	buf := make([]byte, 4+total)
	binary.BigEndian.PutUint32(buf[0:4], uint32(total))
	buf[4] = f.typ
	binary.BigEndian.PutUint64(buf[5:13], f.id)
	binary.BigEndian.PutUint16(buf[13:15], uint16(len(f.method)))
	copy(buf[15:], f.method)
	copy(buf[15+len(f.method):], f.payload)
	_, err := w.Write(buf)
	return err
}

func readFrame(r io.Reader) (frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	total := binary.BigEndian.Uint32(hdr[:])
	if total > MaxFrameSize {
		return frame{}, ErrFrameTooLarge
	}
	if total < 11 {
		return frame{}, fmt.Errorf("rpc: frame too short (%d bytes)", total)
	}
	body := make([]byte, total)
	if _, err := io.ReadFull(r, body); err != nil {
		return frame{}, err
	}
	f := frame{
		typ: body[0],
		id:  binary.BigEndian.Uint64(body[1:9]),
	}
	mlen := int(binary.BigEndian.Uint16(body[9:11]))
	if 11+mlen > int(total) {
		return frame{}, fmt.Errorf("rpc: method length %d overruns frame", mlen)
	}
	f.method = string(body[11 : 11+mlen])
	f.payload = body[11+mlen:]
	return f, nil
}
