// Package rpc provides the two wire protocols the paper's serving
// systems compare (§V-B5): a gRPC-like binary framed RPC with persistent
// multiplexed connections (used by TensorFlow Serving's low-latency API
// and by in-cluster component links) and REST/JSON-over-HTTP helpers
// (used by TFS-REST, SageMaker and the DLHub Management Service API).
//
// The binary protocol deliberately mirrors gRPC's essential properties:
// length-prefixed frames on a long-lived connection, request/response
// multiplexing by stream id, a compact method name, and binary payloads.
// JSON/HTTP pays real parsing and base-10 float costs, so the gRPC<REST
// gap observed in Fig. 8 emerges from genuine work, not injected sleeps.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Frame types.
const (
	frameRequest  = 1
	frameResponse = 2
	frameError    = 3
)

// MaxFrameSize bounds a single frame (64 MiB) to catch corrupt lengths.
const MaxFrameSize = 64 << 20

// ErrFrameTooLarge is returned when a frame header declares a length
// beyond MaxFrameSize.
var ErrFrameTooLarge = errors.New("rpc: frame exceeds maximum size")

// frame is the unit of exchange: 4-byte big-endian total length,
// 1-byte type, 8-byte stream id, 2-byte method length, method bytes,
// payload bytes. body, when non-nil, is the pooled buffer the method
// and payload slices alias; recycleFrame returns it to the pool.
type frame struct {
	typ     byte
	id      uint64
	method  string
	payload []byte
	body    *[]byte
}

// maxPooledBuf caps the size of buffers the pool retains. A rare giant
// frame (up to MaxFrameSize) must not pin megabytes in every P's pool
// shard forever, so oversized buffers are allocated fresh and dropped.
const maxPooledBuf = 1 << 20

// framePool recycles frame encode/decode buffers. Both hot paths churn
// one []byte per frame — the encoded request/response on the write
// side, the received body on the server read side — and at saturation
// that allocation dominates the transport's GC bill. Pooling holds
// steady-state allocs per round trip constant regardless of rate.
// Pointer-to-slice, per sync.Pool guidance, keeps the interface boxing
// allocation-free.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// getBuf returns a pooled buffer resized to n (oversized requests fall
// back to a fresh allocation that putBuf will refuse to retain).
func getBuf(n int) *[]byte {
	bp := framePool.Get().(*[]byte)
	if cap(*bp) < n {
		if n <= maxPooledBuf {
			*bp = make([]byte, n)
		} else {
			framePool.Put(bp)
			b := make([]byte, n)
			return &b
		}
	}
	*bp = (*bp)[:n]
	return bp
}

func putBuf(bp *[]byte) {
	if bp == nil || cap(*bp) > maxPooledBuf {
		return
	}
	framePool.Put(bp)
}

func writeFrame(w io.Writer, f frame) error {
	if len(f.method) > 0xFFFF {
		return fmt.Errorf("rpc: method name too long (%d bytes)", len(f.method))
	}
	total := 1 + 8 + 2 + len(f.method) + len(f.payload)
	if total > MaxFrameSize {
		return ErrFrameTooLarge
	}
	bp := getBuf(4 + total)
	buf := *bp
	binary.BigEndian.PutUint32(buf[0:4], uint32(total))
	buf[4] = f.typ
	binary.BigEndian.PutUint64(buf[5:13], f.id)
	binary.BigEndian.PutUint16(buf[13:15], uint16(len(f.method)))
	copy(buf[15:], f.method)
	copy(buf[15+len(f.method):], f.payload)
	_, err := w.Write(buf)
	putBuf(bp)
	return err
}

// readFrame reads one frame with a freshly allocated body. The client
// read path uses it because response payloads escape to Call callers
// with no lifetime bound; recycling there would hand one caller's bytes
// to another.
func readFrame(r io.Reader) (frame, error) {
	return readFrameInto(r, false)
}

// readFramePooled reads one frame into a pooled buffer. The caller owns
// the body and must return it with recycleFrame once the method and
// payload slices are dead — the server loop does so after the response
// frame is fully written, because handlers may legally return a
// response aliasing the request payload.
func readFramePooled(r io.Reader) (frame, error) {
	return readFrameInto(r, true)
}

func readFrameInto(r io.Reader, pooled bool) (frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	total := binary.BigEndian.Uint32(hdr[:])
	if total > MaxFrameSize {
		return frame{}, ErrFrameTooLarge
	}
	if total < 11 {
		return frame{}, fmt.Errorf("rpc: frame too short (%d bytes)", total)
	}
	var body []byte
	var bp *[]byte
	if pooled {
		bp = getBuf(int(total))
		body = *bp
	} else {
		body = make([]byte, total)
	}
	if _, err := io.ReadFull(r, body); err != nil {
		putBuf(bp)
		return frame{}, err
	}
	f := frame{
		typ: body[0],
		id:  binary.BigEndian.Uint64(body[1:9]),
	}
	mlen := int(binary.BigEndian.Uint16(body[9:11]))
	if 11+mlen > int(total) {
		putBuf(bp)
		return frame{}, fmt.Errorf("rpc: method length %d overruns frame", mlen)
	}
	f.method = string(body[11 : 11+mlen])
	f.payload = body[11+mlen:]
	f.body = bp
	return f, nil
}

// recycleFrame returns a pooled frame body for reuse. Must only be
// called once every slice derived from the frame (method string aside —
// string conversion copies) is dead.
func recycleFrame(f *frame) {
	if f.body == nil {
		return
	}
	bp := f.body
	f.body, f.payload = nil, nil
	putBuf(bp)
}
