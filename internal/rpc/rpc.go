package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// Handler processes one request payload and returns a response payload.
//
// Payload lifetime: the payload is backed by a pooled buffer that is
// recycled after the handler's response frame has been written. A
// handler may read the payload and may return a response that aliases
// it, but must not retain the slice past its return — copy first if the
// bytes need to outlive the call.
type Handler func(ctx context.Context, payload []byte) ([]byte, error)

// Server serves binary-framed RPC over a listener.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler

	listener net.Listener
	conns    sync.WaitGroup
	closed   atomic.Bool
}

// NewServer returns a server with no registered methods.
func NewServer() *Server {
	return &Server{handlers: make(map[string]Handler)}
}

// Handle registers a handler for a method name, replacing any previous
// registration.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	s.handlers[method] = h
	s.mu.Unlock()
}

// Serve accepts connections on l until Close. It always returns a
// non-nil error; after Close it returns net.ErrClosed.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.closed.Load() {
				return net.ErrClosed
			}
			return err
		}
		s.conns.Add(1)
		go func() {
			defer s.conns.Done()
			s.serveConn(conn)
		}()
	}
}

// Close stops accepting and waits for in-flight connections to finish
// their current requests.
func (s *Server) Close() error {
	s.closed.Store(true)
	s.mu.RLock()
	l := s.listener
	s.mu.RUnlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	var wmu sync.Mutex // serialize response frames
	ctx := context.Background()
	for {
		// Request bodies come from the frame pool: each is recycled by
		// its request goroutine once the response hits the wire, so at
		// steady state the read loop stops allocating per frame.
		f, err := readFramePooled(conn)
		if err != nil {
			return
		}
		if f.typ != frameRequest {
			recycleFrame(&f)
			continue
		}
		s.mu.RLock()
		h, ok := s.handlers[f.method]
		s.mu.RUnlock()
		// Each request runs in its own goroutine: the protocol is
		// multiplexed, like gRPC streams over one HTTP/2 connection.
		go func(f frame) {
			var resp frame
			if !ok {
				resp = frame{typ: frameError, id: f.id, payload: []byte("unknown method: " + f.method)}
			} else if out, err := h(ctx, f.payload); err != nil {
				resp = frame{typ: frameError, id: f.id, payload: []byte(err.Error())}
			} else {
				resp = frame{typ: frameResponse, id: f.id, payload: out}
			}
			wmu.Lock()
			writeFrame(conn, resp) //nolint:errcheck — peer gone
			wmu.Unlock()
			// Recycle only after the response is written: handlers may
			// return a response aliasing the pooled request payload.
			recycleFrame(&f)
		}(f)
	}
}

// RemoteError is an error string returned by the remote handler.
type RemoteError string

func (e RemoteError) Error() string { return string(e) }

// Client is a persistent multiplexed connection to a Server.
type Client struct {
	conn net.Conn

	nextID  atomic.Uint64
	mu      sync.Mutex
	pending map[uint64]chan frame
	wmu     sync.Mutex
	closed  atomic.Bool
	readErr error
}

// ErrClientClosed is returned for calls on a closed client.
var ErrClientClosed = errors.New("rpc: client closed")

// NewClient wraps an established connection. The caller keeps ownership
// of dialing (so netsim-shaped conns can be injected).
func NewClient(conn net.Conn) *Client {
	c := &Client{conn: conn, pending: make(map[uint64]chan frame)}
	go c.readLoop()
	return c
}

// Dial connects to addr over plain TCP and returns a client.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

func (c *Client) readLoop() {
	for {
		f, err := readFrame(c.conn)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[f.id]
		if ok {
			delete(c.pending, f.id)
		}
		c.mu.Unlock()
		if ok {
			ch <- f
		}
	}
}

// Call sends a request and waits for its response. Concurrent Calls
// share the connection.
func (c *Client) Call(ctx context.Context, method string, payload []byte) ([]byte, error) {
	if c.closed.Load() {
		return nil, ErrClientClosed
	}
	id := c.nextID.Add(1)
	ch := make(chan frame, 1)
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, fmt.Errorf("rpc: connection failed: %w", err)
	}
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := writeFrame(c.conn, frame{typ: frameRequest, id: id, method: method, payload: payload})
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}

	select {
	case f, ok := <-ch:
		if !ok {
			return nil, fmt.Errorf("rpc: connection closed mid-call")
		}
		if f.typ == frameError {
			return nil, RemoteError(f.payload)
		}
		return f.payload, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// Close tears down the connection; outstanding calls fail.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	return c.conn.Close()
}
