package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func startServer(t *testing.T, s *Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l) //nolint:errcheck
	t.Cleanup(func() { s.Close() })
	return l.Addr().String()
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := frame{typ: frameRequest, id: 42, method: "predict", payload: []byte("data")}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.typ != in.typ || out.id != in.id || out.method != in.method || !bytes.Equal(out.payload, in.payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(id uint64, method string, payload []byte) bool {
		if len(method) > 1000 {
			method = method[:1000]
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, frame{typ: frameResponse, id: id, method: method, payload: payload}); err != nil {
			return false
		}
		out, err := readFrame(&buf)
		if err != nil {
			return false
		}
		return out.id == id && out.method == method && bytes.Equal(out.payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestFramePoolReuse exercises the pooled decode path: a recycled
// body's buffer may be handed to the next read, so each frame's
// contents must be correct even when read after the previous frame was
// recycled, and recycling must be idempotent.
func TestFramePoolReuse(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 100; i++ {
		payload := bytes.Repeat([]byte{byte(i)}, 100+i)
		if err := writeFrame(&buf, frame{typ: frameRequest, id: uint64(i), method: "m", payload: payload}); err != nil {
			t.Fatal(err)
		}
		f, err := readFramePooled(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if f.body == nil {
			t.Fatal("pooled read returned no pooled body")
		}
		if f.id != uint64(i) || f.method != "m" || !bytes.Equal(f.payload, payload) {
			t.Fatalf("frame %d corrupted after pool reuse: %+v", i, f)
		}
		recycleFrame(&f)
		recycleFrame(&f) // second recycle is a no-op, not a double-put
		if f.body != nil || f.payload != nil {
			t.Fatal("recycleFrame must clear body and payload")
		}
	}
}

// TestFramePoolOversized verifies frames past the pool retention cap
// still round-trip (they just skip the pool).
func TestFramePoolOversized(t *testing.T) {
	payload := make([]byte, maxPooledBuf+1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	var buf bytes.Buffer
	if err := writeFrame(&buf, frame{typ: frameResponse, id: 9, method: "big", payload: payload}); err != nil {
		t.Fatal(err)
	}
	f, err := readFramePooled(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.payload, payload) {
		t.Fatal("oversized frame corrupted")
	}
	recycleFrame(&f)
}

func TestFrameTooLarge(t *testing.T) {
	if err := writeFrame(&bytes.Buffer{}, frame{payload: make([]byte, MaxFrameSize)}); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	// Corrupt header claiming a giant frame.
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := readFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge on read, got %v", err)
	}
}

func TestCallEcho(t *testing.T) {
	s := NewServer()
	s.Handle("echo", func(_ context.Context, p []byte) ([]byte, error) { return p, nil })
	addr := startServer(t, s)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out, err := c.Call(context.Background(), "echo", []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "ping" {
		t.Fatalf("echo returned %q", out)
	}
}

func TestCallUnknownMethod(t *testing.T) {
	addr := startServer(t, NewServer())
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call(context.Background(), "nope", nil)
	var re RemoteError
	if !errors.As(err, &re) || !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("want RemoteError about unknown method, got %v", err)
	}
}

func TestCallHandlerError(t *testing.T) {
	s := NewServer()
	s.Handle("fail", func(_ context.Context, _ []byte) ([]byte, error) {
		return nil, errors.New("model exploded")
	})
	addr := startServer(t, s)
	c, _ := Dial(addr)
	defer c.Close()
	_, err := c.Call(context.Background(), "fail", nil)
	if err == nil || !strings.Contains(err.Error(), "model exploded") {
		t.Fatalf("want remote error, got %v", err)
	}
}

func TestConcurrentCallsMultiplexed(t *testing.T) {
	s := NewServer()
	s.Handle("slow", func(_ context.Context, p []byte) ([]byte, error) {
		time.Sleep(20 * time.Millisecond)
		return p, nil
	})
	addr := startServer(t, s)
	c, _ := Dial(addr)
	defer c.Close()

	const n = 16
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("req-%d", i)
			out, err := c.Call(context.Background(), "slow", []byte(want))
			if err != nil {
				errs[i] = err
				return
			}
			if string(out) != want {
				errs[i] = fmt.Errorf("response mismatch: %q != %q", out, want)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// If calls were serialized this would take >= 320ms.
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("calls not multiplexed: %v for %d concurrent 20ms calls", elapsed, n)
	}
}

func TestCallContextCancel(t *testing.T) {
	s := NewServer()
	s.Handle("hang", func(_ context.Context, _ []byte) ([]byte, error) {
		time.Sleep(5 * time.Second)
		return nil, nil
	})
	addr := startServer(t, s)
	c, _ := Dial(addr)
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := c.Call(ctx, "hang", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline exceeded, got %v", err)
	}
}

func TestClientClosePendingCallsFail(t *testing.T) {
	s := NewServer()
	s.Handle("hang", func(_ context.Context, _ []byte) ([]byte, error) {
		time.Sleep(5 * time.Second)
		return nil, nil
	})
	addr := startServer(t, s)
	c, _ := Dial(addr)

	done := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), "hang", nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("pending call should fail after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending call did not return after close")
	}
}

func TestCallAfterClose(t *testing.T) {
	addr := startServer(t, NewServer())
	c, _ := Dial(addr)
	c.Close()
	if _, err := c.Call(context.Background(), "x", nil); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("want ErrClientClosed, got %v", err)
	}
}

func TestEncodeDecodeFloats(t *testing.T) {
	in := []float32{0, 1.5, -3.25, 1e-8, 3e8}
	out, err := DecodeFloats(EncodeFloats(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("length mismatch %d != %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("element %d: %v != %v", i, out[i], in[i])
		}
	}
}

func TestDecodeFloatsCorrupt(t *testing.T) {
	if _, err := DecodeFloats([]byte{1, 2}); err == nil {
		t.Fatal("short payload should fail")
	}
	// Declares 100 floats but provides none.
	bad := EncodeFloats(nil)
	bad[0] = 100
	if _, err := DecodeFloats(bad); err == nil {
		t.Fatal("length overrun should fail")
	}
}

func TestFloatsRoundTripProperty(t *testing.T) {
	f := func(in []float32) bool {
		out, err := DecodeFloats(EncodeFloats(in))
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			// NaN != NaN; compare bit patterns.
			if in[i] != out[i] && !(in[i] != in[i] && out[i] != out[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRESTHelpers(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/ok":
			var in map[string]any
			if err := ReadJSON(r, &in); err != nil {
				WriteError(w, 400, "bad body: %v", err)
				return
			}
			WriteJSON(w, 200, map[string]any{"echo": in["msg"]})
		case "/err":
			WriteError(w, 500, "kaboom %d", 7)
		case "/get":
			WriteJSON(w, 200, map[string]int{"n": 3})
		}
	}))
	defer srv.Close()

	var out map[string]any
	if err := PostJSON(srv.Client(), srv.URL+"/ok", map[string]string{"msg": "hi"}, &out); err != nil {
		t.Fatal(err)
	}
	if out["echo"] != "hi" {
		t.Fatalf("echo = %v", out["echo"])
	}

	err := PostJSON(srv.Client(), srv.URL+"/err", map[string]string{}, nil)
	if err == nil || !strings.Contains(err.Error(), "kaboom 7") {
		t.Fatalf("want kaboom error envelope, got %v", err)
	}

	var got map[string]int
	if err := GetJSON(srv.Client(), srv.URL+"/get", &got); err != nil {
		t.Fatal(err)
	}
	if got["n"] != 3 {
		t.Fatalf("GetJSON got %v", got)
	}
}

func TestServerCloseUnblocksServe(t *testing.T) {
	s := NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case err := <-done:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("want net.ErrClosed, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Serve did not return after Close")
	}
}
