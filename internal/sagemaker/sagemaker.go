// Package sagemaker reproduces the SageMaker serving path of §IV-C and
// §V-B5: "The SageMaker container includes a Python Flask application
// that exposes an HTTP-based model inference interface." The Flask app
// hosts the servable under the simulated Python runtime and adds the
// calibrated WSGI per-request overhead; SageMaker can alternatively
// front TensorFlow Serving ("SageMaker-TFServing"), which the Fig. 8
// harness builds by pointing the tfserving executor at SageMaker-built
// containers.
package sagemaker

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/container"
	"repro/internal/executor"
	"repro/internal/k8s"
	"repro/internal/netsim"
	"repro/internal/rpc"
	"repro/internal/schema"
	"repro/internal/servable"
	"repro/internal/simconst"
)

// Entrypoint is the container entrypoint key for the Flask app.
const Entrypoint = "sagemaker-flask-app"

// FlaskApp is the in-container Python inference application serving
// POST /invocations and GET /ping, as SageMaker containers do.
type FlaskApp struct {
	mu      sync.Mutex
	sv      *servable.Servable
	httpSrv *http.Server
	addr    string
}

// NewProcessFactory returns the container process factory.
func NewProcessFactory() container.ProcessFactory {
	return func() container.Process { return &FlaskApp{} }
}

// Start implements container.Process.
func (a *FlaskApp) Start(fs map[string][]byte, env map[string]string) error {
	docData, ok := fs["/dlhub/doc.json"]
	if !ok {
		return fmt.Errorf("sagemaker: image missing /dlhub/doc.json")
	}
	var doc schema.Document
	if err := json.Unmarshal(docData, &doc); err != nil {
		return err
	}
	components := map[string][]byte{}
	const prefix = "/dlhub/components/"
	for path, data := range fs {
		if strings.HasPrefix(path, prefix) {
			components[path[len(prefix):]] = data
		}
	}
	sv, err := servable.Load(&doc, components, true /* Flask is Python */)
	if err != nil {
		return err
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		sv.Close()
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/ping", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	var runMu sync.Mutex // one WSGI worker: Python executes serially
	mux.HandleFunc("/invocations", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			rpc.WriteError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		runMu.Lock()
		defer runMu.Unlock()
		// WSGI request routing/parsing cost beyond Go's HTTP stack.
		time.Sleep(simconst.D(simconst.FlaskRequestOverhead))
		var input any
		if err := rpc.ReadJSON(r, &input); err != nil {
			rpc.WriteError(w, http.StatusBadRequest, "bad body: %v", err)
			return
		}
		start := time.Now()
		out, err := sv.Run(input)
		if err != nil {
			rpc.WriteError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		rpc.WriteJSON(w, http.StatusOK, executor.Result{
			Output:          out,
			InferenceMicros: time.Since(start).Microseconds(),
		})
	})
	httpSrv := &http.Server{Handler: mux}
	go httpSrv.Serve(l) //nolint:errcheck

	a.mu.Lock()
	a.sv = sv
	a.httpSrv = httpSrv
	a.addr = l.Addr().String()
	a.mu.Unlock()
	return nil
}

// Stop implements container.Process.
func (a *FlaskApp) Stop() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.httpSrv != nil {
		a.httpSrv.Close()
	}
	if a.sv != nil {
		a.sv.Close()
	}
}

// Addr returns the HTTP address.
func (a *FlaskApp) Addr() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.addr
}

// --- executor ----------------------------------------------------------------

// Executor deploys SageMaker Flask containers on Kubernetes (§IV-C
// "SageMaker executor ... composes HTTP requests to the SageMaker
// interface to perform inference").
type Executor struct {
	cluster *k8s.Cluster
	builder *container.Builder
	link    netsim.Profile

	mu   sync.Mutex
	deps map[string]*deployment
}

type deployment struct {
	id      string
	depName string

	epMu sync.Mutex
	eps  []endpoint
	rr   int
}

type endpoint struct {
	url    string
	client *http.Client
}

// New creates a SageMaker executor.
func New(cluster *k8s.Cluster, builder *container.Builder, link netsim.Profile) *Executor {
	return &Executor{cluster: cluster, builder: builder, link: link, deps: make(map[string]*deployment)}
}

// Name implements executor.Executor.
func (e *Executor) Name() string { return "sagemaker-flask" }

// Deploy implements executor.Executor.
func (e *Executor) Deploy(pkg *servable.Package, replicas int) error {
	img, err := executor.BuildServableImage(e.builder, pkg, Entrypoint)
	if err != nil {
		return err
	}
	depName := "sm-" + pkg.Doc.Publication.Name
	if _, err := e.cluster.CreateDeployment(depName, k8s.PodSpec{
		Image:    img.Ref(),
		Requests: k8s.Resources{MilliCPU: 2000, MemMB: 4096},
	}, replicas); err != nil {
		return err
	}
	d := &deployment{id: pkg.Doc.ID, depName: depName}
	if err := e.connect(d); err != nil {
		return err
	}
	e.mu.Lock()
	e.deps[pkg.Doc.ID] = d
	e.mu.Unlock()
	return nil
}

func (e *Executor) connect(d *deployment) error {
	pods := e.cluster.PodsMatching(map[string]string{"deployment": d.depName})
	d.epMu.Lock()
	defer d.epMu.Unlock()
	d.eps = nil
	for _, pod := range pods {
		ctr := pod.Container()
		if ctr == nil {
			continue
		}
		app, ok := ctr.Proc.(*FlaskApp)
		if !ok {
			return fmt.Errorf("sagemaker: pod %s is not a Flask app", pod.Name)
		}
		link := e.link
		d.eps = append(d.eps, endpoint{
			url: "http://" + app.Addr() + "/invocations",
			client: &http.Client{Transport: &http.Transport{
				DialContext: func(_ context.Context, network, addr string) (net.Conn, error) {
					conn, err := net.Dial(network, addr)
					if err != nil {
						return nil, err
					}
					return netsim.Wrap(conn, link), nil
				},
			}},
		})
	}
	return nil
}

// Scale implements executor.Executor.
func (e *Executor) Scale(servableID string, replicas int) error {
	e.mu.Lock()
	d, ok := e.deps[servableID]
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", executor.ErrNotDeployed, servableID)
	}
	if err := e.cluster.Scale(d.depName, replicas); err != nil {
		return err
	}
	return e.connect(d)
}

// Replicas implements executor.Executor.
func (e *Executor) Replicas(servableID string) int {
	e.mu.Lock()
	d, ok := e.deps[servableID]
	e.mu.Unlock()
	if !ok {
		return 0
	}
	d.epMu.Lock()
	defer d.epMu.Unlock()
	return len(d.eps)
}

// Invoke implements executor.Executor.
func (e *Executor) Invoke(_ context.Context, servableID string, input any) (executor.Result, error) {
	e.mu.Lock()
	d, ok := e.deps[servableID]
	e.mu.Unlock()
	if !ok {
		return executor.Result{}, fmt.Errorf("%w: %s", executor.ErrNotDeployed, servableID)
	}
	d.epMu.Lock()
	if len(d.eps) == 0 {
		d.epMu.Unlock()
		return executor.Result{}, fmt.Errorf("%w: no endpoints", executor.ErrNotDeployed)
	}
	ep := d.eps[d.rr%len(d.eps)]
	d.rr++
	d.epMu.Unlock()

	var res executor.Result
	if err := rpc.PostJSON(ep.client, ep.url, input, &res); err != nil {
		return executor.Result{}, err
	}
	return res, nil
}

// Undeploy implements executor.Executor.
func (e *Executor) Undeploy(servableID string) error {
	e.mu.Lock()
	d, ok := e.deps[servableID]
	if ok {
		delete(e.deps, servableID)
	}
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", executor.ErrNotDeployed, servableID)
	}
	return e.cluster.DeleteDeployment(d.depName)
}

// Close implements executor.Executor.
func (e *Executor) Close() {
	e.mu.Lock()
	ids := make([]string, 0, len(e.deps))
	for id := range e.deps {
		ids = append(ids, id)
	}
	e.mu.Unlock()
	for _, id := range ids {
		e.Undeploy(id) //nolint:errcheck
	}
}
