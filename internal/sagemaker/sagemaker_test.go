package sagemaker

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/container"
	"repro/internal/executor"
	"repro/internal/k8s"
	"repro/internal/netsim"
	"repro/internal/servable"
	"repro/internal/simconst"
)

func init() {
	simconst.Scale = 1000
}

func newExec(t *testing.T) *Executor {
	t.Helper()
	reg := container.NewRegistry()
	builder := container.NewBuilder(reg)
	rt := container.NewRuntime(reg)
	rt.RegisterProcess(Entrypoint, NewProcessFactory())
	cluster := k8s.NewCluster(rt, 4, k8s.Resources{MilliCPU: 32000, MemMB: 128 * 1024})
	e := New(cluster, builder, netsim.RTT(170*time.Microsecond, 0))
	t.Cleanup(e.Close)
	return e
}

func TestFlaskServesCIFAR(t *testing.T) {
	e := newExec(t)
	pkg, err := servable.CIFAR10Package(1)
	if err != nil {
		t.Fatal(err)
	}
	pkg.Doc.ID = "dlhub/cifar10"
	if err := e.Deploy(pkg, 2); err != nil {
		t.Fatal(err)
	}
	in := make([]float64, 32*32*3)
	res, err := e.Invoke(context.Background(), "dlhub/cifar10", in)
	if err != nil {
		t.Fatal(err)
	}
	preds, ok := res.Output.([]any)
	if !ok || len(preds) != 5 {
		t.Fatalf("want top-5, got %v", res.Output)
	}
	if e.Replicas("dlhub/cifar10") != 2 {
		t.Fatalf("want 2 replicas")
	}
}

func TestFlaskServesPythonFunctions(t *testing.T) {
	// Unlike TF-Serving, SageMaker's Flask app can host any servable.
	e := newExec(t)
	pkg := servable.MatminerUtilPackage()
	pkg.Doc.ID = "dlhub/util"
	if err := e.Deploy(pkg, 1); err != nil {
		t.Fatal(err)
	}
	res, err := e.Invoke(context.Background(), "dlhub/util", "Fe2O3")
	if err != nil {
		t.Fatal(err)
	}
	if m := res.Output.(map[string]any); len(m) != 2 {
		t.Fatalf("Fe2O3 should parse to 2 elements: %v", m)
	}
}

func TestFlaskErrors(t *testing.T) {
	e := newExec(t)
	if _, err := e.Invoke(context.Background(), "ghost", 1); !errors.Is(err, executor.ErrNotDeployed) {
		t.Fatalf("want not deployed, got %v", err)
	}
	pkg := servable.MatminerUtilPackage()
	pkg.Doc.ID = "dlhub/util"
	if err := e.Deploy(pkg, 1); err != nil {
		t.Fatal(err)
	}
	// Servable error surfaces as HTTP 500 -> error.
	if _, err := e.Invoke(context.Background(), "dlhub/util", 42.0); err == nil {
		t.Fatal("bad input should propagate as error")
	}
}

func TestScaleAndUndeploy(t *testing.T) {
	e := newExec(t)
	pkg := servable.NoopPackage()
	pkg.Doc.ID = "dlhub/noop"
	if err := e.Deploy(pkg, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Scale("dlhub/noop", 3); err != nil {
		t.Fatal(err)
	}
	if e.Replicas("dlhub/noop") != 3 {
		t.Fatalf("want 3, got %d", e.Replicas("dlhub/noop"))
	}
	if err := e.Undeploy("dlhub/noop"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Invoke(context.Background(), "dlhub/noop", "x"); !errors.Is(err, executor.ErrNotDeployed) {
		t.Fatalf("want not deployed, got %v", err)
	}
	if err := e.Scale("ghost", 1); !errors.Is(err, executor.ErrNotDeployed) {
		t.Fatalf("want not deployed, got %v", err)
	}
}
