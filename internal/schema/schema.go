// Package schema defines the DLHub model publication schema of §IV-A:
// "standard publication metadata (e.g., creator, date, name, description)
// as well as ML-specific metadata such as model type (e.g., Keras,
// TensorFlow) and input and output data types." Every published model is
// described by one Document; the Management Service validates it, the
// search index ingests a flattened view of it, and the servable builder
// consumes its Servable block.
package schema

import (
	"encoding/json"
	"errors"
	"fmt"
	"regexp"
	"strings"
	"time"
)

// ModelType enumerates the model families DLHub can package (§IV: "a
// wide range of model types including TensorFlow, Keras, and
// Scikit-learn", plus arbitrary Python functions and multi-step
// pipelines).
type ModelType string

// Supported model types.
const (
	TypeKeras          ModelType = "keras"
	TypeTensorFlow     ModelType = "tensorflow"
	TypeScikitLearn    ModelType = "sklearn"
	TypePythonFunction ModelType = "python_function"
	TypePipeline       ModelType = "pipeline"
)

// ValidTypes lists every accepted model type.
func ValidTypes() []ModelType {
	return []ModelType{TypeKeras, TypeTensorFlow, TypeScikitLearn, TypePythonFunction, TypePipeline}
}

// DataType describes one input or output of a servable (§III-B "input
// types": primitives, files, structured data).
type DataType struct {
	// Kind is one of: "float", "int", "string", "bool", "ndarray",
	// "list", "dict", "file", "image".
	Kind string `json:"kind"`
	// Shape for ndarrays/images, e.g. [32,32,3]; -1 is a free axis.
	Shape []int `json:"shape,omitempty"`
	// ItemKind for lists (element type).
	ItemKind string `json:"item_kind,omitempty"`
	// Description is human-readable.
	Description string `json:"description,omitempty"`
}

var validKinds = map[string]bool{
	"float": true, "int": true, "string": true, "bool": true,
	"ndarray": true, "list": true, "dict": true, "file": true, "image": true,
}

// Publication is the standard scholarly metadata block, modeled on
// DataCite as DLHub does.
type Publication struct {
	Name        string   `json:"name"`  // short machine name, e.g. "cifar10"
	Title       string   `json:"title"` // human title
	Authors     []string `json:"authors"`
	Description string   `json:"description,omitempty"`
	Domains     []string `json:"domains,omitempty"` // e.g. ["materials science"]
	// Identifier is an optional persistent identifier (BYO DOI).
	Identifier string `json:"identifier,omitempty"`
	// Citation is free-text or BibTeX.
	Citation string `json:"citation,omitempty"`
	// License, e.g. "Apache-2.0".
	License string `json:"license,omitempty"`
	// RelatedDatasets links training/test data (Table I "datasets
	// included: yes").
	RelatedDatasets []string `json:"related_datasets,omitempty"`
	// VisibleTo lists ACL principals; empty means owner-only.
	VisibleTo []string `json:"visible_to,omitempty"`
	// Year of publication.
	Year int `json:"year,omitempty"`
}

// Servable is the ML-specific block describing how to build and run the
// model.
type Servable struct {
	Type ModelType `json:"type"`
	// Language/framework versions for reproducibility.
	Dependencies map[string]string `json:"dependencies,omitempty"`
	// ModelComponents names uploaded artifacts (weights, pickles...)
	// keyed by role, e.g. {"weights": "model.wt", "arch": "net.json"}.
	ModelComponents map[string]string `json:"model_components,omitempty"`
	// Entry identifies the callable: for python_function the
	// "module:function" name; for pipelines empty.
	Entry string `json:"entry,omitempty"`
	// Steps lists servable names for TypePipeline, in order.
	Steps []string `json:"steps,omitempty"`
	// Input/Output types of the standard run interface.
	Input  DataType `json:"input"`
	Output DataType `json:"output"`
	// Hyperparameters used in training (model-building metadata).
	Hyperparameters map[string]json.RawMessage `json:"hyperparameters,omitempty"`
	// TrainingMetadata, e.g. dataset name, epochs, accuracy.
	TrainingMetadata map[string]json.RawMessage `json:"training_metadata,omitempty"`
}

// Document is one complete model publication record.
type Document struct {
	// ID is assigned by the repository: "<owner-short>/<name>".
	ID string `json:"id,omitempty"`
	// Owner is the publishing identity URN.
	Owner string `json:"owner,omitempty"`
	// Version is assigned by the repository, starting at 1.
	Version int `json:"version,omitempty"`
	// PublishedAt is assigned by the repository.
	PublishedAt time.Time `json:"published_at,omitempty"`

	Publication Publication `json:"publication"`
	Servable    Servable    `json:"servable"`
}

// Clone returns a deep copy of the document: no slice, map or raw-JSON
// storage is shared with the receiver. Snapshot persistence clones
// documents under the repository lock so concurrent metadata updates
// can never race the encoder.
func (d *Document) Clone() *Document {
	if d == nil {
		return nil
	}
	cp := *d
	cp.Publication.Authors = append([]string(nil), d.Publication.Authors...)
	cp.Publication.Domains = append([]string(nil), d.Publication.Domains...)
	cp.Publication.RelatedDatasets = append([]string(nil), d.Publication.RelatedDatasets...)
	cp.Publication.VisibleTo = append([]string(nil), d.Publication.VisibleTo...)
	cp.Servable.Dependencies = cloneMap(d.Servable.Dependencies)
	cp.Servable.ModelComponents = cloneMap(d.Servable.ModelComponents)
	cp.Servable.Steps = append([]string(nil), d.Servable.Steps...)
	cp.Servable.Input.Shape = append([]int(nil), d.Servable.Input.Shape...)
	cp.Servable.Output.Shape = append([]int(nil), d.Servable.Output.Shape...)
	cp.Servable.Hyperparameters = cloneRawMap(d.Servable.Hyperparameters)
	cp.Servable.TrainingMetadata = cloneRawMap(d.Servable.TrainingMetadata)
	return &cp
}

func cloneMap(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func cloneRawMap(m map[string]json.RawMessage) map[string]json.RawMessage {
	if m == nil {
		return nil
	}
	out := make(map[string]json.RawMessage, len(m))
	for k, v := range m {
		out[k] = append(json.RawMessage(nil), v...)
	}
	return out
}

var nameRe = regexp.MustCompile(`^[a-z0-9][a-z0-9._-]{0,63}$`)

// ErrInvalid wraps all validation failures.
var ErrInvalid = errors.New("schema: invalid document")

// Validate checks a document before publication. It returns an error
// listing every violation, wrapped in ErrInvalid.
func Validate(d *Document) error {
	var problems []string
	if !nameRe.MatchString(d.Publication.Name) {
		problems = append(problems, fmt.Sprintf("publication.name %q must match %s", d.Publication.Name, nameRe))
	}
	if d.Publication.Title == "" {
		problems = append(problems, "publication.title is required")
	}
	if len(d.Publication.Authors) == 0 {
		problems = append(problems, "publication.authors must be non-empty")
	}
	typeOK := false
	for _, t := range ValidTypes() {
		if d.Servable.Type == t {
			typeOK = true
			break
		}
	}
	if !typeOK {
		problems = append(problems, fmt.Sprintf("servable.type %q unknown", d.Servable.Type))
	}
	switch d.Servable.Type {
	case TypePythonFunction:
		if d.Servable.Entry == "" || !strings.Contains(d.Servable.Entry, ":") {
			problems = append(problems, `python_function requires servable.entry "module:function"`)
		}
	case TypePipeline:
		if len(d.Servable.Steps) < 2 {
			problems = append(problems, "pipeline requires at least 2 steps")
		}
	case TypeKeras, TypeTensorFlow, TypeScikitLearn:
		if len(d.Servable.ModelComponents) == 0 {
			problems = append(problems, fmt.Sprintf("%s requires model_components (weights etc.)", d.Servable.Type))
		}
	}
	if d.Servable.Type != TypePipeline {
		if err := validateDataType("servable.input", d.Servable.Input); err != "" {
			problems = append(problems, err)
		}
		if err := validateDataType("servable.output", d.Servable.Output); err != "" {
			problems = append(problems, err)
		}
	}
	if len(problems) == 0 {
		return nil
	}
	return fmt.Errorf("%w: %s", ErrInvalid, strings.Join(problems, "; "))
}

func validateDataType(field string, dt DataType) string {
	if dt.Kind == "" {
		return field + ".kind is required"
	}
	if !validKinds[dt.Kind] {
		return fmt.Sprintf("%s.kind %q unknown", field, dt.Kind)
	}
	if dt.Kind == "list" && dt.ItemKind != "" && !validKinds[dt.ItemKind] {
		return fmt.Sprintf("%s.item_kind %q unknown", field, dt.ItemKind)
	}
	for _, axis := range dt.Shape {
		if axis == 0 || axis < -1 {
			return fmt.Sprintf("%s.shape axis %d invalid (must be positive or -1)", field, axis)
		}
	}
	return ""
}

// Flatten produces the key->value view the search index ingests:
// dotted field names with scalar or []string values, mirroring how
// DLHub metadata is indexed in Globus Search.
func Flatten(d *Document) map[string]any {
	m := map[string]any{
		"id":           d.ID,
		"owner":        d.Owner,
		"version":      d.Version,
		"name":         d.Publication.Name,
		"title":        d.Publication.Title,
		"description":  d.Publication.Description,
		"authors":      append([]string(nil), d.Publication.Authors...),
		"domains":      append([]string(nil), d.Publication.Domains...),
		"identifier":   d.Publication.Identifier,
		"license":      d.Publication.License,
		"year":         d.Publication.Year,
		"type":         string(d.Servable.Type),
		"entry":        d.Servable.Entry,
		"input.kind":   d.Servable.Input.Kind,
		"output.kind":  d.Servable.Output.Kind,
		"published_at": d.PublishedAt.Unix(),
	}
	if len(d.Servable.Steps) > 0 {
		m["steps"] = append([]string(nil), d.Servable.Steps...)
	}
	// Empty values would pollute term dictionaries; drop them.
	for k, v := range m {
		switch vv := v.(type) {
		case string:
			if vv == "" {
				delete(m, k)
			}
		case []string:
			if len(vv) == 0 {
				delete(m, k)
			}
		}
	}
	return m
}
