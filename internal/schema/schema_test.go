package schema

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func validDoc() *Document {
	return &Document{
		Publication: Publication{
			Name:    "cifar10",
			Title:   "CIFAR-10 CNN",
			Authors: []string{"Chard, Ryan"},
		},
		Servable: Servable{
			Type:            TypeKeras,
			ModelComponents: map[string]string{"weights": "model.wt"},
			Input:           DataType{Kind: "ndarray", Shape: []int{32, 32, 3}},
			Output:          DataType{Kind: "list", ItemKind: "float"},
		},
	}
}

func TestValidateHappyPath(t *testing.T) {
	if err := Validate(validDoc()); err != nil {
		t.Fatal(err)
	}
}

func TestValidateNameRules(t *testing.T) {
	bad := []string{"", "UPPER", "-leading", "has space", strings.Repeat("x", 80)}
	for _, name := range bad {
		d := validDoc()
		d.Publication.Name = name
		if err := Validate(d); !errors.Is(err, ErrInvalid) {
			t.Errorf("name %q should be invalid", name)
		}
	}
	good := []string{"a", "model-1", "my.model_2"}
	for _, name := range good {
		d := validDoc()
		d.Publication.Name = name
		if err := Validate(d); err != nil {
			t.Errorf("name %q should be valid: %v", name, err)
		}
	}
}

func TestValidateMissingFields(t *testing.T) {
	d := validDoc()
	d.Publication.Title = ""
	d.Publication.Authors = nil
	err := Validate(d)
	if !errors.Is(err, ErrInvalid) {
		t.Fatal("want invalid")
	}
	if !strings.Contains(err.Error(), "title") || !strings.Contains(err.Error(), "authors") {
		t.Fatalf("error should list all problems: %v", err)
	}
}

func TestValidateTypeSpecific(t *testing.T) {
	d := validDoc()
	d.Servable.Type = TypePythonFunction
	d.Servable.Entry = "nocolon"
	if err := Validate(d); !errors.Is(err, ErrInvalid) {
		t.Fatal("python_function without module:function entry should fail")
	}
	d.Servable.Entry = "app:predict"
	if err := Validate(d); err != nil {
		t.Fatal(err)
	}

	p := validDoc()
	p.Servable.Type = TypePipeline
	p.Servable.Steps = []string{"only-one"}
	if err := Validate(p); !errors.Is(err, ErrInvalid) {
		t.Fatal("pipeline with one step should fail")
	}
	p.Servable.Steps = []string{"a", "b", "c"}
	if err := Validate(p); err != nil {
		t.Fatal(err)
	}

	k := validDoc()
	k.Servable.ModelComponents = nil
	if err := Validate(k); !errors.Is(err, ErrInvalid) {
		t.Fatal("keras without components should fail")
	}

	u := validDoc()
	u.Servable.Type = "caffe2"
	if err := Validate(u); !errors.Is(err, ErrInvalid) {
		t.Fatal("unknown type should fail")
	}
}

func TestValidateDataTypes(t *testing.T) {
	d := validDoc()
	d.Servable.Input = DataType{Kind: "tensor9"}
	if err := Validate(d); !errors.Is(err, ErrInvalid) {
		t.Fatal("unknown kind should fail")
	}
	d.Servable.Input = DataType{Kind: "ndarray", Shape: []int{0}}
	if err := Validate(d); !errors.Is(err, ErrInvalid) {
		t.Fatal("zero axis should fail")
	}
	d.Servable.Input = DataType{Kind: "ndarray", Shape: []int{-1, 3}}
	if err := Validate(d); err != nil {
		t.Fatalf("-1 free axis should be allowed: %v", err)
	}
	d.Servable.Input = DataType{}
	if err := Validate(d); !errors.Is(err, ErrInvalid) {
		t.Fatal("missing kind should fail")
	}
}

func TestFlatten(t *testing.T) {
	d := validDoc()
	d.ID = "rchard/cifar10"
	d.Owner = "urn:identity:orcid:rchard"
	d.Version = 3
	d.PublishedAt = time.Unix(1700000000, 0)
	d.Publication.Domains = []string{"vision"}
	m := Flatten(d)

	if m["id"] != "rchard/cifar10" || m["type"] != "keras" || m["version"] != 3 {
		t.Fatalf("flatten wrong: %v", m)
	}
	if m["published_at"] != int64(1700000000) {
		t.Fatalf("published_at should be unix seconds, got %v", m["published_at"])
	}
	if _, ok := m["identifier"]; ok {
		t.Fatal("empty strings should be dropped")
	}
	if _, ok := m["steps"]; ok {
		t.Fatal("empty steps should be dropped")
	}
	doms, ok := m["domains"].([]string)
	if !ok || doms[0] != "vision" {
		t.Fatalf("domains wrong: %v", m["domains"])
	}
}

func TestDocumentJSONRoundTrip(t *testing.T) {
	d := validDoc()
	d.Servable.Hyperparameters = map[string]json.RawMessage{"lr": json.RawMessage("0.001")}
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Document
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Publication.Name != d.Publication.Name || back.Servable.Type != d.Servable.Type {
		t.Fatal("round trip lost data")
	}
	if string(back.Servable.Hyperparameters["lr"]) != "0.001" {
		t.Fatal("hyperparameters lost")
	}
}

func TestValidTypesComplete(t *testing.T) {
	if len(ValidTypes()) != 5 {
		t.Fatalf("expected 5 model types, got %d", len(ValidTypes()))
	}
}
