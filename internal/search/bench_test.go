package search

import (
	"fmt"
	"testing"
)

// corpus builds an n-document index shaped like a model repository.
func corpus(n int) *Index {
	ix := NewIndex()
	domains := []string{"materials science", "cancer research", "cosmology", "neuroanatomy", "genomics"}
	types := []string{"keras", "tensorflow", "sklearn", "python_function"}
	for i := 0; i < n; i++ {
		ix.Ingest(Doc{
			ID: fmt.Sprintf("user%d/model%d", i%50, i),
			Fields: map[string]any{
				"title":       fmt.Sprintf("model %d for %s prediction", i, domains[i%len(domains)]),
				"description": "a machine learning model predicting properties from structured scientific data",
				"type":        types[i%len(types)],
				"domains":     []string{domains[i%len(domains)]},
				"year":        2014 + i%6,
			},
			VisibleTo: []string{"public"},
		})
	}
	return ix
}

func BenchmarkIngest(b *testing.B) {
	ix := NewIndex()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Ingest(Doc{
			ID:        fmt.Sprintf("d%d", i),
			Fields:    map[string]any{"title": "benchmark model ingest path", "year": 2019},
			VisibleTo: []string{"public"},
		})
	}
}

func BenchmarkFreeTextSearch(b *testing.B) {
	ix := corpus(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := ix.Search(Query{Must: []Clause{{FreeText: "cancer prediction"}}, Limit: 10})
		if r.Total == 0 {
			b.Fatal("no hits")
		}
	}
}

func BenchmarkFacetedSearch(b *testing.B) {
	ix := corpus(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := ix.Search(Query{
			Must:    []Clause{{Field: "type", Term: "keras"}},
			FacetOn: []string{"domains", "year"},
		})
		if r.Total == 0 {
			b.Fatal("no hits")
		}
	}
}

func BenchmarkRangeQuery(b *testing.B) {
	ix := corpus(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := ix.Search(Query{Must: []Clause{{Field: "year", Range: &Range{Min: 2016, Max: 2018}}}})
		if r.Total == 0 {
			b.Fatal("no hits")
		}
	}
}
