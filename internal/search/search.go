// Package search is the Globus-Search-like metadata index of §IV-A:
// "DLHub's search interface supports fine-grained, access-controlled
// queries over model metadata ... free text queries, partial matching,
// range queries, faceted search, and more."
//
// Documents are flat maps of dotted field names to scalars or string
// lists. The index maintains an inverted index for text fields, sorted
// numeric postings for range queries, and a per-document principal list
// ("visible_to") applied as a mandatory filter on every query.
package search

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"unicode"
)

// Doc is an indexed document.
type Doc struct {
	ID     string
	Fields map[string]any
	// VisibleTo lists ACL principals that may see this document.
	VisibleTo []string
}

// ErrNotFound is returned when a document ID is absent.
var ErrNotFound = errors.New("search: document not found")

// Index is a concurrency-safe in-memory search index.
type Index struct {
	mu   sync.RWMutex
	docs map[string]*Doc
	// inverted: field -> token -> docID set.
	inverted map[string]map[string]map[string]bool
	// numeric: field -> docID -> value (range queries scan; fine at
	// repository scale).
	numeric map[string]map[string]float64
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		docs:     make(map[string]*Doc),
		inverted: make(map[string]map[string]map[string]bool),
		numeric:  make(map[string]map[string]float64),
	}
}

// Tokenize lower-cases and splits on non-alphanumeric runes.
func Tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// Ingest adds or replaces a document.
func (ix *Index) Ingest(doc Doc) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.docs[doc.ID]; ok {
		ix.removeLocked(doc.ID)
	}
	stored := &Doc{ID: doc.ID, Fields: make(map[string]any, len(doc.Fields)), VisibleTo: append([]string(nil), doc.VisibleTo...)}
	for k, v := range doc.Fields {
		stored.Fields[k] = v
	}
	ix.docs[doc.ID] = stored

	for field, value := range stored.Fields {
		switch v := value.(type) {
		case string:
			ix.indexTokens(field, v, doc.ID)
		case []string:
			for _, s := range v {
				ix.indexTokens(field, s, doc.ID)
			}
		case int:
			ix.indexNumber(field, float64(v), doc.ID)
		case int64:
			ix.indexNumber(field, float64(v), doc.ID)
		case float64:
			ix.indexNumber(field, v, doc.ID)
		}
	}
}

func (ix *Index) indexTokens(field, text, docID string) {
	for _, tok := range Tokenize(text) {
		byTok, ok := ix.inverted[field]
		if !ok {
			byTok = make(map[string]map[string]bool)
			ix.inverted[field] = byTok
		}
		set, ok := byTok[tok]
		if !ok {
			set = make(map[string]bool)
			byTok[tok] = set
		}
		set[docID] = true
	}
}

func (ix *Index) indexNumber(field string, v float64, docID string) {
	byDoc, ok := ix.numeric[field]
	if !ok {
		byDoc = make(map[string]float64)
		ix.numeric[field] = byDoc
	}
	byDoc[docID] = v
}

// Reset empties the index in place: every document, posting and
// numeric entry is dropped while concurrent readers keep a consistent
// (old-or-new) view. Snapshot restore uses it so loading over a
// non-empty index cannot leave stale entries behind.
func (ix *Index) Reset() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.docs = make(map[string]*Doc)
	ix.inverted = make(map[string]map[string]map[string]bool)
	ix.numeric = make(map[string]map[string]float64)
}

// Delete removes a document. It returns ErrNotFound for unknown IDs.
func (ix *Index) Delete(id string) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.docs[id]; !ok {
		return ErrNotFound
	}
	ix.removeLocked(id)
	return nil
}

func (ix *Index) removeLocked(id string) {
	delete(ix.docs, id)
	for _, byTok := range ix.inverted {
		for tok, set := range byTok {
			delete(set, id)
			if len(set) == 0 {
				delete(byTok, tok)
			}
		}
	}
	for _, byDoc := range ix.numeric {
		delete(byDoc, id)
	}
}

// Get fetches a document without ACL checks (repository internals).
func (ix *Index) Get(id string) (*Doc, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	d, ok := ix.docs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return copyDoc(d), nil
}

// Len reports the number of indexed documents.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

func copyDoc(d *Doc) *Doc {
	out := &Doc{ID: d.ID, Fields: make(map[string]any, len(d.Fields)), VisibleTo: append([]string(nil), d.VisibleTo...)}
	for k, v := range d.Fields {
		out.Fields[k] = v
	}
	return out
}

// --- query model --------------------------------------------------------

// Clause is one boolean constraint.
type Clause struct {
	// Exactly one of the following is set.

	// FreeText matches tokens across all text fields (scored).
	FreeText string
	// Field + one matcher below for fielded constraints.
	Field string
	// Term requires an exact token in Field.
	Term string
	// Prefix requires a token with the given prefix in Field (partial
	// matching).
	Prefix string
	// Range requires Field's numeric value within [Min,Max] (either
	// bound may be NaN for open).
	Range *Range
}

// Range is a numeric interval; use math.NaN() for an open bound.
type Range struct{ Min, Max float64 }

// Query combines clauses (all must match) with optional facets.
type Query struct {
	Must []Clause
	// FacetOn lists fields whose value distribution over the result
	// set should be returned.
	FacetOn []string
	// Principals is the caller's ACL identity set; documents whose
	// VisibleTo does not intersect it are invisible. Empty principals
	// see only documents visible to "public".
	Principals []string
	// Limit bounds results (0 = no limit).
	Limit int
	// Offset skips that many ranked hits before the returned page —
	// the server side of cursor pagination (Total still counts the
	// full result set).
	Offset int
}

// Hit is one scored result.
type Hit struct {
	Doc   *Doc
	Score float64
}

// Result is a query response.
type Result struct {
	Hits   []Hit
	Total  int
	Facets map[string]map[string]int
}

// Search evaluates q.
func (ix *Index) Search(q Query) Result {
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	// Start from all ACL-visible docs, then intersect clause by clause.
	candidates := make(map[string]float64) // docID -> score
	for id, doc := range ix.docs {
		if visible(doc, q.Principals) {
			candidates[id] = 0
		}
	}
	for _, c := range q.Must {
		matched := ix.evalClause(c)
		for id := range candidates {
			sc, ok := matched[id]
			if !ok {
				delete(candidates, id)
				continue
			}
			candidates[id] += sc
		}
	}

	hits := make([]Hit, 0, len(candidates))
	for id, score := range candidates {
		hits = append(hits, Hit{Doc: copyDoc(ix.docs[id]), Score: score})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Doc.ID < hits[j].Doc.ID
	})

	res := Result{Total: len(hits)}
	if len(q.FacetOn) > 0 {
		// Facets are computed over the full result set, not the
		// returned page.
		res.Facets = make(map[string]map[string]int)
		for _, field := range q.FacetOn {
			counts := make(map[string]int)
			for _, h := range hits {
				switch v := h.Doc.Fields[field].(type) {
				case string:
					counts[v]++
				case []string:
					for _, s := range v {
						counts[s]++
					}
				case int:
					counts[fmt.Sprint(v)]++
				case int64:
					counts[fmt.Sprint(v)]++
				case float64:
					counts[fmt.Sprint(v)]++
				}
			}
			res.Facets[field] = counts
		}
	}
	if q.Offset > 0 {
		if q.Offset >= len(hits) {
			hits = nil
		} else {
			hits = hits[q.Offset:]
		}
	}
	if q.Limit > 0 && len(hits) > q.Limit {
		hits = hits[:q.Limit]
	}
	res.Hits = hits
	return res
}

func visible(d *Doc, principals []string) bool {
	for _, v := range d.VisibleTo {
		if v == "public" {
			return true
		}
		for _, p := range principals {
			if v == p {
				return true
			}
		}
	}
	return false
}

// evalClause returns matching docID -> score contribution.
func (ix *Index) evalClause(c Clause) map[string]float64 {
	out := make(map[string]float64)
	switch {
	case c.FreeText != "":
		// TF-IDF-ish: rarer tokens score higher; any-token match (OR
		// within the clause), all-clause AND at the query level.
		n := float64(len(ix.docs))
		for _, tok := range Tokenize(c.FreeText) {
			for _, byTok := range ix.inverted {
				if set, ok := byTok[tok]; ok {
					idf := math.Log(1 + n/float64(len(set)))
					for id := range set {
						out[id] += idf
					}
				}
			}
		}
	case c.Term != "":
		tok := strings.ToLower(c.Term)
		if byTok, ok := ix.inverted[c.Field]; ok {
			if set, ok := byTok[tok]; ok {
				for id := range set {
					out[id] += 1
				}
			}
		}
	case c.Prefix != "":
		pre := strings.ToLower(c.Prefix)
		if byTok, ok := ix.inverted[c.Field]; ok {
			for tok, set := range byTok {
				if strings.HasPrefix(tok, pre) {
					for id := range set {
						out[id] += 1
					}
				}
			}
		}
	case c.Range != nil:
		if byDoc, ok := ix.numeric[c.Field]; ok {
			for id, v := range byDoc {
				if (math.IsNaN(c.Range.Min) || v >= c.Range.Min) &&
					(math.IsNaN(c.Range.Max) || v <= c.Range.Max) {
					out[id] += 1
				}
			}
		}
	}
	return out
}
