package search

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func seedIndex() *Index {
	ix := NewIndex()
	ix.Ingest(Doc{
		ID: "rchard/cifar10",
		Fields: map[string]any{
			"title":       "CIFAR-10 convolutional network",
			"description": "image classification benchmark model",
			"type":        "keras",
			"domains":     []string{"vision"},
			"year":        2018,
		},
		VisibleTo: []string{"public"},
	})
	ix.Ingest(Doc{
		ID: "ward/matminer-model",
		Fields: map[string]any{
			"title":       "Formation enthalpy random forest",
			"description": "predicts material stability from composition",
			"type":        "sklearn",
			"domains":     []string{"materials science"},
			"year":        2016,
		},
		VisibleTo: []string{"public"},
	})
	ix.Ingest(Doc{
		ID: "candle/drug-response",
		Fields: map[string]any{
			"title":       "CANDLE drug response predictor",
			"description": "cellular drug response from tumor features",
			"type":        "keras",
			"domains":     []string{"cancer"},
			"year":        2018,
		},
		VisibleTo: []string{"urn:group:candle-testers"},
	})
	return ix
}

func ids(r Result) []string {
	out := make([]string, len(r.Hits))
	for i, h := range r.Hits {
		out[i] = h.Doc.ID
	}
	sort.Strings(out)
	return out
}

func TestFreeTextSearch(t *testing.T) {
	ix := seedIndex()
	r := ix.Search(Query{Must: []Clause{{FreeText: "stability composition"}}, Principals: nil})
	if !reflect.DeepEqual(ids(r), []string{"ward/matminer-model"}) {
		t.Fatalf("free text wrong: %v", ids(r))
	}
}

func TestFreeTextRanking(t *testing.T) {
	ix := NewIndex()
	ix.Ingest(Doc{ID: "a", Fields: map[string]any{"title": "neural network"}, VisibleTo: []string{"public"}})
	ix.Ingest(Doc{ID: "b", Fields: map[string]any{"title": "neural network neural"}, VisibleTo: []string{"public"}})
	ix.Ingest(Doc{ID: "c", Fields: map[string]any{"title": "random forest"}, VisibleTo: []string{"public"}})
	r := ix.Search(Query{Must: []Clause{{FreeText: "neural forest"}}})
	if r.Total != 3 {
		t.Fatalf("want 3 hits (OR within clause), got %d", r.Total)
	}
	// "forest" is rarer than "neural" (1 doc vs 2) so c should outrank a.
	var scoreA, scoreC float64
	for _, h := range r.Hits {
		switch h.Doc.ID {
		case "a":
			scoreA = h.Score
		case "c":
			scoreC = h.Score
		}
	}
	if scoreC <= scoreA {
		t.Fatalf("rarer token should score higher: c=%v a=%v", scoreC, scoreA)
	}
}

func TestTermQuery(t *testing.T) {
	ix := seedIndex()
	r := ix.Search(Query{Must: []Clause{{Field: "type", Term: "keras"}}})
	if !reflect.DeepEqual(ids(r), []string{"rchard/cifar10"}) {
		t.Fatalf("term query leaked private docs or missed: %v", ids(r))
	}
}

func TestPrefixQuery(t *testing.T) {
	ix := seedIndex()
	r := ix.Search(Query{Must: []Clause{{Field: "title", Prefix: "convolut"}}})
	if !reflect.DeepEqual(ids(r), []string{"rchard/cifar10"}) {
		t.Fatalf("prefix query wrong: %v", ids(r))
	}
	// Prefix matching is the paper's "partial matching".
	r = ix.Search(Query{Must: []Clause{{Field: "description", Prefix: "predict"}}})
	if len(ids(r)) != 1 {
		t.Fatalf("prefix predict wrong: %v", ids(r))
	}
}

func TestRangeQuery(t *testing.T) {
	ix := seedIndex()
	r := ix.Search(Query{Must: []Clause{{Field: "year", Range: &Range{Min: 2017, Max: 2019}}}})
	got := ids(r)
	if !reflect.DeepEqual(got, []string{"rchard/cifar10"}) {
		t.Fatalf("range query wrong: %v", got)
	}
	// Open lower bound.
	r = ix.Search(Query{Must: []Clause{{Field: "year", Range: &Range{Min: math.NaN(), Max: 2017}}}})
	if !reflect.DeepEqual(ids(r), []string{"ward/matminer-model"}) {
		t.Fatalf("open range wrong: %v", ids(r))
	}
}

func TestClausesAreConjunctive(t *testing.T) {
	ix := seedIndex()
	r := ix.Search(Query{Must: []Clause{
		{Field: "type", Term: "keras"},
		{Field: "year", Range: &Range{Min: 2018, Max: 2018}},
	}, Principals: []string{"urn:group:candle-testers"}})
	if !reflect.DeepEqual(ids(r), []string{"candle/drug-response", "rchard/cifar10"}) {
		t.Fatalf("conjunction wrong: %v", ids(r))
	}
}

func TestACLFiltering(t *testing.T) {
	ix := seedIndex()
	// Anonymous: only public docs.
	r := ix.Search(Query{Must: []Clause{{Field: "type", Term: "keras"}}})
	for _, h := range r.Hits {
		if h.Doc.ID == "candle/drug-response" {
			t.Fatal("private doc leaked to anonymous caller")
		}
	}
	// Group member sees it.
	r = ix.Search(Query{
		Must:       []Clause{{Field: "type", Term: "keras"}},
		Principals: []string{"urn:identity:orcid:u", "urn:group:candle-testers"},
	})
	found := false
	for _, h := range r.Hits {
		if h.Doc.ID == "candle/drug-response" {
			found = true
		}
	}
	if !found {
		t.Fatal("group member should see the CANDLE model")
	}
}

func TestFacets(t *testing.T) {
	ix := seedIndex()
	r := ix.Search(Query{
		Principals: []string{"urn:group:candle-testers"},
		FacetOn:    []string{"type", "domains"},
	})
	if r.Facets["type"]["keras"] != 2 || r.Facets["type"]["sklearn"] != 1 {
		t.Fatalf("type facet wrong: %v", r.Facets["type"])
	}
	if r.Facets["domains"]["cancer"] != 1 {
		t.Fatalf("domains facet wrong: %v", r.Facets["domains"])
	}
}

func TestFacetsCoverFullResultSetDespiteLimit(t *testing.T) {
	ix := seedIndex()
	r := ix.Search(Query{
		Principals: []string{"urn:group:candle-testers"},
		FacetOn:    []string{"type"},
		Limit:      1,
	})
	if len(r.Hits) != 1 {
		t.Fatalf("limit not applied: %d hits", len(r.Hits))
	}
	if r.Total != 3 {
		t.Fatalf("total should be pre-limit: %d", r.Total)
	}
	if r.Facets["type"]["keras"] != 2 {
		t.Fatalf("facets should be computed pre-limit: %v", r.Facets)
	}
}

func TestUpdateReplacesDoc(t *testing.T) {
	ix := seedIndex()
	ix.Ingest(Doc{
		ID:        "rchard/cifar10",
		Fields:    map[string]any{"title": "renamed model", "type": "tensorflow"},
		VisibleTo: []string{"public"},
	})
	if r := ix.Search(Query{Must: []Clause{{FreeText: "convolutional"}}}); r.Total != 0 {
		t.Fatal("stale tokens should be removed on update")
	}
	if r := ix.Search(Query{Must: []Clause{{Field: "type", Term: "tensorflow"}}}); r.Total != 1 {
		t.Fatal("new tokens should be searchable")
	}
}

func TestDelete(t *testing.T) {
	ix := seedIndex()
	if err := ix.Delete("rchard/cifar10"); err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete("rchard/cifar10"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete should be ErrNotFound, got %v", err)
	}
	if ix.Len() != 2 {
		t.Fatalf("want 2 docs after delete, got %d", ix.Len())
	}
	if r := ix.Search(Query{Must: []Clause{{FreeText: "cifar"}}}); r.Total != 0 {
		t.Fatal("deleted doc still searchable")
	}
}

func TestGet(t *testing.T) {
	ix := seedIndex()
	d, err := ix.Get("ward/matminer-model")
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the returned doc must not corrupt the index.
	d.Fields["title"] = "tampered"
	d2, _ := ix.Get("ward/matminer-model")
	if d2.Fields["title"] == "tampered" {
		t.Fatal("Get must return a copy")
	}
	if _, err := ix.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("CIFAR-10: image_classification (v2)")
	want := []string{"cifar", "10", "image", "classification", "v2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tokenize wrong: %v", got)
	}
	if len(Tokenize("")) != 0 {
		t.Fatal("empty string should have no tokens")
	}
}

// Property: every ingested public doc is findable by any of its title
// tokens, and never findable after deletion.
func TestIngestFindDeleteProperty(t *testing.T) {
	ix := NewIndex()
	n := 0
	f := func(words []string) bool {
		n++
		id := fmt.Sprintf("doc-%d", n)
		title := ""
		for _, w := range words {
			title += w + " "
		}
		toks := Tokenize(title)
		ix.Ingest(Doc{ID: id, Fields: map[string]any{"title": title}, VisibleTo: []string{"public"}})
		for _, tok := range toks {
			r := ix.Search(Query{Must: []Clause{{Field: "title", Term: tok}}})
			found := false
			for _, h := range r.Hits {
				if h.Doc.ID == id {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		if err := ix.Delete(id); err != nil {
			return false
		}
		for _, tok := range toks {
			r := ix.Search(Query{Must: []Clause{{Field: "title", Term: tok}}})
			for _, h := range r.Hits {
				if h.Doc.ID == id {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: range [v,v] finds exactly the docs with value v.
func TestRangePointProperty(t *testing.T) {
	ix := NewIndex()
	vals := map[string]float64{}
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("d%d", i)
		v := float64(i % 7)
		vals[id] = v
		ix.Ingest(Doc{ID: id, Fields: map[string]any{"score": v}, VisibleTo: []string{"public"}})
	}
	for v := 0.0; v < 7; v++ {
		r := ix.Search(Query{Must: []Clause{{Field: "score", Range: &Range{Min: v, Max: v}}}})
		want := 0
		for _, val := range vals {
			if val == v {
				want++
			}
		}
		if r.Total != want {
			t.Fatalf("point range %v: got %d want %d", v, r.Total, want)
		}
	}
}

func TestEmptyQueryReturnsAllVisible(t *testing.T) {
	ix := seedIndex()
	r := ix.Search(Query{})
	if r.Total != 2 {
		t.Fatalf("empty query should return public docs, got %d", r.Total)
	}
}
