package servable

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/matsci"
	"repro/internal/ml/nn"
	"repro/internal/ml/rf"
	"repro/internal/pyruntime"
	"repro/internal/schema"
	"repro/internal/simconst"
)

// This file registers the "Python modules" baked into DLHub servable
// containers and provides builders for the six servables of §V-A:
// noop, Inception, CIFAR-10, and the three matminer workflow stages
// (util, featurize, model) — plus the tomography functions of §VI-C
// used by the examples.

var registerOnce sync.Once

// RegisterBuiltins installs all built-in Python functions in the
// pyruntime registry. Idempotent; called by every builder.
func RegisterBuiltins() {
	registerOnce.Do(func() {
		pyruntime.Register("noop:hello", func(arg any) (any, error) {
			return "hello world", nil
		})
		pyruntime.Register("test:length", func(arg any) (any, error) {
			s, ok := arg.(string)
			if !ok {
				return nil, fmt.Errorf("test:length wants a string, got %T", arg)
			}
			return len(s), nil
		})
		// "test sleep": a synthetic-load servable that holds its
		// (single-threaded) pod for 50 ms per request — deterministic
		// demand for autoscaler smokes and load experiments, without
		// burning CPU the way a real model would.
		pyruntime.Register("test:sleep", func(arg any) (any, error) {
			time.Sleep(simconst.D(50 * time.Millisecond))
			return "ok", nil
		})
		// "matminer util": parse a composition string with pymatgen.
		pyruntime.Register("pymatgen:parse_composition", func(arg any) (any, error) {
			formula, ok := arg.(string)
			if !ok {
				return nil, fmt.Errorf("pymatgen:parse_composition wants a string, got %T", arg)
			}
			comp, err := matsci.ParseComposition(formula)
			if err != nil {
				return nil, err
			}
			syms, fracs := comp.Fractions()
			out := map[string]any{}
			for i, s := range syms {
				out[s] = fracs[i]
			}
			return out, nil
		})
		// "matminer featurize": element fractions -> Ward/Magpie features.
		pyruntime.Register("matminer:featurize", func(arg any) (any, error) {
			m, ok := arg.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("matminer:featurize wants {element: fraction}, got %T", arg)
			}
			comp := matsci.Composition{}
			for sym, v := range m {
				f, err := toFloat(v)
				if err != nil {
					return nil, fmt.Errorf("fraction for %s: %v", sym, err)
				}
				if _, known := matsci.Lookup(sym); !known {
					return nil, fmt.Errorf("unknown element %q", sym)
				}
				comp[sym] = float64(f)
			}
			if len(comp) == 0 {
				return nil, fmt.Errorf("empty composition")
			}
			feats := matsci.Featurize(comp)
			out := make([]any, len(feats))
			for i, f := range feats {
				out[i] = f
			}
			return out, nil
		})
		// Tomography (§VI-C): identify the highest-quality slice index
		// for reconstruction: score each slice by gradient energy.
		pyruntime.Register("tomography:find_center", func(arg any) (any, error) {
			slices, ok := arg.([]any)
			if !ok {
				return nil, fmt.Errorf("tomography:find_center wants a list of slices, got %T", arg)
			}
			bestIdx, bestScore := -1, math.Inf(-1)
			for i, s := range slices {
				img, err := ToFloat64Slice(s)
				if err != nil {
					return nil, fmt.Errorf("slice %d: %v", i, err)
				}
				score := gradientEnergy(img)
				if score > bestScore {
					bestScore, bestIdx = score, i
				}
			}
			if bestIdx < 0 {
				return nil, fmt.Errorf("no slices given")
			}
			return map[string]any{"center_slice": bestIdx, "quality": bestScore}, nil
		})
		// Tomography segmentation: threshold at Otsu-like 2-means and
		// report cell-like connected mass fraction.
		pyruntime.Register("tomography:segment", func(arg any) (any, error) {
			img, err := ToFloat64Slice(arg)
			if err != nil {
				return nil, err
			}
			if len(img) == 0 {
				return nil, fmt.Errorf("empty image")
			}
			thr := twoMeansThreshold(img)
			mask := make([]any, len(img))
			count := 0
			for i, v := range img {
				if v >= thr {
					mask[i] = 1
					count++
				} else {
					mask[i] = 0
				}
			}
			return map[string]any{
				"threshold":     thr,
				"mask":          mask,
				"cell_fraction": float64(count) / float64(len(img)),
			}, nil
		})
	})
}

func gradientEnergy(img []float64) float64 {
	var e float64
	for i := 1; i < len(img); i++ {
		d := img[i] - img[i-1]
		e += d * d
	}
	return e
}

// twoMeansThreshold runs 1-D 2-means (Otsu-like) to split foreground
// from background.
func twoMeansThreshold(img []float64) float64 {
	lo, hi := img[0], img[0]
	for _, v := range img {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	thr := (lo + hi) / 2
	for iter := 0; iter < 16; iter++ {
		var sumL, sumH float64
		var nL, nH int
		for _, v := range img {
			if v < thr {
				sumL += v
				nL++
			} else {
				sumH += v
				nH++
			}
		}
		if nL == 0 || nH == 0 {
			break
		}
		next := (sumL/float64(nL) + sumH/float64(nH)) / 2
		if math.Abs(next-thr) < 1e-9 {
			break
		}
		thr = next
	}
	return thr
}

// --- paper servable builders -------------------------------------------------

// Package bundles a publication document with its uploaded components —
// what a user submits to the Management Service.
type Package struct {
	Doc        *schema.Document
	Components map[string][]byte
}

// NoopPackage is the baseline "noop" servable: "returns hello world
// when invoked".
func NoopPackage() *Package {
	RegisterBuiltins()
	return &Package{
		Doc: &schema.Document{
			Publication: schema.Publication{
				Name:        "noop",
				Title:       "Noop baseline",
				Authors:     []string{"DLHub Team"},
				Description: "Baseline task that returns hello world when invoked.",
				VisibleTo:   []string{"public"},
			},
			Servable: schema.Servable{
				Type:   schema.TypePythonFunction,
				Entry:  "noop:hello",
				Input:  schema.DataType{Kind: "string", Description: "ignored"},
				Output: schema.DataType{Kind: "string"},
			},
		},
	}
}

// InceptionPackage is Google's Inception-v3 image classifier (§V-A):
// "trained on a large academic dataset for image recognition ...
// outputs the five most likely categories".
func InceptionPackage(seed int64) (*Package, error) {
	RegisterBuiltins()
	model := nn.NewInception(seed)
	data, err := nn.Encode(model)
	if err != nil {
		return nil, err
	}
	return &Package{
		Doc: &schema.Document{
			Publication: schema.Publication{
				Name:        "inception",
				Title:       "Inception-v3 image classifier",
				Authors:     []string{"Szegedy, Christian", "et al."},
				Description: "22-layer Inception image recognition model; returns top-5 of 1000 categories.",
				Domains:     []string{"computer vision"},
				VisibleTo:   []string{"public"},
			},
			Servable: schema.Servable{
				Type:            schema.TypeTensorFlow,
				ModelComponents: map[string]string{"model": "inception.pb"},
				Input:           schema.DataType{Kind: "ndarray", Shape: model.InputShape, Description: "RGB image"},
				Output:          schema.DataType{Kind: "list", ItemKind: "dict", Description: "top-5 labels"},
			},
		},
		Components: map[string][]byte{"model": data},
	}, nil
}

// CIFAR10Package is the multi-layer CNN trained on CIFAR-10 (§V-A).
func CIFAR10Package(seed int64) (*Package, error) {
	RegisterBuiltins()
	model := nn.NewCIFAR10(seed)
	data, err := nn.Encode(model)
	if err != nil {
		return nil, err
	}
	return &Package{
		Doc: &schema.Document{
			Publication: schema.Publication{
				Name:        "cifar10",
				Title:       "CIFAR-10 convolutional classifier",
				Authors:     []string{"Krizhevsky, Alex"},
				Description: "Multi-layer CNN classifying 32x32 RGB images into 10 categories.",
				Domains:     []string{"computer vision"},
				VisibleTo:   []string{"public"},
			},
			Servable: schema.Servable{
				Type:            schema.TypeKeras,
				ModelComponents: map[string]string{"model": "cifar10.h5"},
				Input:           schema.DataType{Kind: "ndarray", Shape: []int{32, 32, 3}},
				Output:          schema.DataType{Kind: "list", ItemKind: "dict"},
			},
		},
		Components: map[string][]byte{"model": data},
	}, nil
}

// MatminerUtilPackage parses composition strings (workflow step 1).
func MatminerUtilPackage() *Package {
	RegisterBuiltins()
	return &Package{
		Doc: &schema.Document{
			Publication: schema.Publication{
				Name:        "matminer-util",
				Title:       "Composition parser (pymatgen)",
				Authors:     []string{"Ward, Logan"},
				Description: "Parses a composition string (e.g. NaCl) into element fractions with pymatgen.",
				Domains:     []string{"materials science"},
				VisibleTo:   []string{"public"},
			},
			Servable: schema.Servable{
				Type:   schema.TypePythonFunction,
				Entry:  "pymatgen:parse_composition",
				Input:  schema.DataType{Kind: "string", Description: "chemical formula"},
				Output: schema.DataType{Kind: "dict", Description: "element -> mole fraction"},
			},
		},
	}
}

// MatminerFeaturizePackage computes Ward/Magpie features (step 2).
func MatminerFeaturizePackage() *Package {
	RegisterBuiltins()
	return &Package{
		Doc: &schema.Document{
			Publication: schema.Publication{
				Name:        "matminer-featurize",
				Title:       "Magpie featurizer (matminer)",
				Authors:     []string{"Ward, Logan"},
				Description: "Computes elemental-property statistics (Ward et al. 2016) from element fractions.",
				Domains:     []string{"materials science"},
				VisibleTo:   []string{"public"},
			},
			Servable: schema.Servable{
				Type:   schema.TypePythonFunction,
				Entry:  "matminer:featurize",
				Input:  schema.DataType{Kind: "dict"},
				Output: schema.DataType{Kind: "list", ItemKind: "float"},
			},
		},
	}
}

// MatminerModelPackage trains the random-forest stability model on the
// synthetic OQMD-like dataset and packages it (step 3).
func MatminerModelPackage(trainN int, seed int64) (*Package, error) {
	RegisterBuiltins()
	if trainN <= 0 {
		trainN = 400
	}
	ds := matsci.GenerateDataset(trainN, seed)
	forest, err := rf.Train(ds.X, ds.Y, rf.Config{Trees: 100, MaxDepth: 12, Seed: seed})
	if err != nil {
		return nil, err
	}
	data, err := rf.Encode(forest)
	if err != nil {
		return nil, err
	}
	return &Package{
		Doc: &schema.Document{
			Publication: schema.Publication{
				Name:        "matminer-model",
				Title:       "Formation-energy random forest (scikit-learn)",
				Authors:     []string{"Ward, Logan"},
				Description: "Random forest predicting material stability from Magpie features; trained on OQMD-like data.",
				Domains:     []string{"materials science"},
				RelatedDatasets: []string{
					"https://oqmd.org (synthetic stand-in, see DESIGN.md)",
				},
				VisibleTo: []string{"public"},
			},
			Servable: schema.Servable{
				Type:            schema.TypeScikitLearn,
				ModelComponents: map[string]string{"model": "rf.pkl"},
				Input:           schema.DataType{Kind: "list", ItemKind: "float"},
				Output:          schema.DataType{Kind: "float", Description: "formation energy, eV/atom"},
			},
		},
		Components: map[string][]byte{"model": data},
	}, nil
}

// PipelineDoc builds the publication document for a pipeline chaining
// the given published servable IDs in order (§VI-D). Pipelines are
// virtual servables: no components, no container.
func PipelineDoc(name, title string, steps []string) *schema.Document {
	return &schema.Document{
		Publication: schema.Publication{
			Name:        name,
			Title:       title,
			Authors:     []string{"DLHub Team"},
			VisibleTo:   []string{"public"},
			Description: fmt.Sprintf("pipeline over %v", steps),
		},
		Servable: schema.Servable{
			Type:  schema.TypePipeline,
			Steps: steps,
		},
	}
}

// PaperServables builds all six §V-A servable packages keyed by name.
func PaperServables(seed int64) (map[string]*Package, error) {
	inception, err := InceptionPackage(seed)
	if err != nil {
		return nil, err
	}
	cifar, err := CIFAR10Package(seed)
	if err != nil {
		return nil, err
	}
	model, err := MatminerModelPackage(400, seed)
	if err != nil {
		return nil, err
	}
	return map[string]*Package{
		"noop":               NoopPackage(),
		"inception":          inception,
		"cifar10":            cifar,
		"matminer-util":      MatminerUtilPackage(),
		"matminer-featurize": MatminerFeaturizePackage(),
		"matminer-model":     model,
	}, nil
}
