// Package servable implements DLHub's central abstraction (§IV-A):
// "DLHub converts all published models into executable servables ... an
// executable DLHub container that implements a standard execution
// interface and comprises a complete model package that includes the
// trained model, model components (e.g., training weights,
// hyperparameters), and any dependencies."
//
// A Servable couples a schema.Document with a Runner built from the
// uploaded model components. Runners exist for every supported model
// type: Keras/TensorFlow (the nn runtime), scikit-learn (the rf
// runtime), arbitrary Python functions (the pyruntime bridge), the
// baseline noop, and multi-step pipelines. A Servable may be hosted
// natively (the C++-speed path used by the TF-Serving executor) or
// inside a simulated Python interpreter (the Parsl/IPP, SageMaker-Flask
// and Clipper paths), which adds the calibrated interpreter costs.
package servable

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"

	"repro/internal/ml/nn"
	"repro/internal/ml/rf"
	"repro/internal/ml/tensor"
	"repro/internal/pyruntime"
	"repro/internal/schema"
)

// Errors.
var (
	ErrMissingComponent = errors.New("servable: missing model component")
	ErrBadInput         = errors.New("servable: bad input")
	ErrUnsupportedType  = errors.New("servable: unsupported model type")
)

// Runner executes the model natively.
type Runner interface {
	// Run performs one execution on a JSON-compatible input.
	Run(input any) (any, error)
	// Close releases resources.
	Close()
}

// Servable is a loaded, runnable model instance — the in-container
// object behind the standard execution interface.
type Servable struct {
	Doc    *schema.Document
	runner Runner
	py     *pyruntime.Interpreter
	pyName string
}

// Load builds a Servable from its publication document and uploaded
// components. pythonHosted selects the simulated-CPython host (true for
// the Parsl/Flask/Clipper paths, false for TF-Serving).
func Load(doc *schema.Document, components map[string][]byte, pythonHosted bool) (*Servable, error) {
	runner, err := newRunner(doc, components)
	if err != nil {
		return nil, err
	}
	s := &Servable{Doc: doc, runner: runner}
	if pythonHosted {
		s.py = pyruntime.New()
		s.pyName = "servable/" + doc.ID + ":run"
		pyruntime.Register(s.pyName, runner.Run)
		s.py.Start()
		s.py.Import("dlhub_sdk")
	}
	return s, nil
}

// Run executes the servable through its host (native or Python).
func (s *Servable) Run(input any) (any, error) {
	if s.py != nil {
		return s.py.Call(s.pyName, input)
	}
	return s.runner.Run(input)
}

// RunNative bypasses the Python host — used by the TF-Serving executor,
// whose C++ core runs the same graph without interpreter overhead.
func (s *Servable) RunNative(input any) (any, error) { return s.runner.Run(input) }

// PythonHosted reports whether the servable runs under the simulated
// interpreter.
func (s *Servable) PythonHosted() bool { return s.py != nil }

// Close shuts down the runner and interpreter.
func (s *Servable) Close() {
	if s.py != nil {
		s.py.Stop()
	}
	s.runner.Close()
}

func newRunner(doc *schema.Document, components map[string][]byte) (Runner, error) {
	switch doc.Servable.Type {
	case schema.TypeKeras, schema.TypeTensorFlow:
		data, ok := components["model"]
		if !ok {
			return nil, fmt.Errorf("%w: %q needs \"model\"", ErrMissingComponent, doc.ID)
		}
		m, err := nn.Decode(data)
		if err != nil {
			return nil, err
		}
		return &nnRunner{model: m}, nil
	case schema.TypeScikitLearn:
		data, ok := components["model"]
		if !ok {
			return nil, fmt.Errorf("%w: %q needs \"model\"", ErrMissingComponent, doc.ID)
		}
		f, err := rf.Decode(data)
		if err != nil {
			return nil, err
		}
		return &rfRunner{forest: f}, nil
	case schema.TypePythonFunction:
		if !pyruntime.Registered(doc.Servable.Entry) {
			return nil, fmt.Errorf("servable: python function %q not importable", doc.Servable.Entry)
		}
		return &pyFuncRunner{entry: doc.Servable.Entry}, nil
	case schema.TypePipeline:
		return nil, fmt.Errorf("%w: pipelines are executed by the Management Service, not loaded as runners", ErrUnsupportedType)
	default:
		return nil, fmt.Errorf("%w: %s", ErrUnsupportedType, doc.Servable.Type)
	}
}

// --- input conversion ------------------------------------------------------

// ToFloat32Slice converts JSON-ish numeric arrays into a float32 vector.
func ToFloat32Slice(v any) ([]float32, error) {
	switch in := v.(type) {
	case []float32:
		return in, nil
	case []float64:
		out := make([]float32, len(in))
		for i, x := range in {
			out[i] = float32(x)
		}
		return out, nil
	case []any:
		out := make([]float32, len(in))
		for i, x := range in {
			f, err := toFloat(x)
			if err != nil {
				return nil, fmt.Errorf("%w: element %d: %v", ErrBadInput, i, err)
			}
			out[i] = f
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: cannot convert %T to float vector", ErrBadInput, v)
	}
}

func toFloat(x any) (float32, error) {
	switch n := x.(type) {
	case float64:
		return float32(n), nil
	case float32:
		return n, nil
	case int:
		return float32(n), nil
	case json.Number:
		f, err := strconv.ParseFloat(string(n), 64)
		return float32(f), err
	default:
		return 0, fmt.Errorf("non-numeric %T", x)
	}
}

// ToFloat64Slice converts JSON-ish numeric arrays into float64.
func ToFloat64Slice(v any) ([]float64, error) {
	f32, err := ToFloat32Slice(v)
	if err != nil {
		// Retry natively for []float64 precision.
		if in, ok := v.([]float64); ok {
			return in, nil
		}
		return nil, err
	}
	if in, ok := v.([]float64); ok {
		return in, nil
	}
	out := make([]float64, len(f32))
	for i, x := range f32 {
		out[i] = float64(x)
	}
	return out, nil
}

// --- runners ----------------------------------------------------------------

// nnRunner serves Keras/TensorFlow-type models via the nn runtime.
type nnRunner struct{ model *nn.Model }

func (r *nnRunner) Run(input any) (any, error) {
	vec, err := ToFloat32Slice(input)
	if err != nil {
		return nil, err
	}
	want := 1
	for _, d := range r.model.InputShape {
		want *= d
	}
	if len(vec) != want {
		return nil, fmt.Errorf("%w: model %s wants %d values, got %d", ErrBadInput, r.model.ModelName, want, len(vec))
	}
	in := tensor.FromData(vec, r.model.InputShape...)
	preds := r.model.Predict(in, 5)
	out := make([]any, len(preds))
	for i, p := range preds {
		out[i] = map[string]any{"label": p.Label, "probability": float64(p.Probability)}
	}
	return out, nil
}

func (r *nnRunner) Close() {}

// rfRunner serves scikit-learn-type models via the rf runtime.
type rfRunner struct{ forest *rf.Forest }

func (r *rfRunner) Run(input any) (any, error) {
	vec, err := ToFloat64Slice(input)
	if err != nil {
		return nil, err
	}
	pred, err := r.forest.Predict(vec)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return pred, nil
}

func (r *rfRunner) Close() {}

// pyFuncRunner serves arbitrary registered Python functions.
type pyFuncRunner struct{ entry string }

func (r *pyFuncRunner) Run(input any) (any, error) {
	f, ok := pyruntime.Lookup(r.entry)
	if !ok {
		return nil, fmt.Errorf("servable: function %q vanished", r.entry)
	}
	return f(input)
}

func (r *pyFuncRunner) Close() {}
