package servable

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/simconst"
)

func init() {
	simconst.Scale = 1000
}

func loadPkg(t *testing.T, p *Package, pythonHosted bool) *Servable {
	t.Helper()
	p.Doc.ID = "test/" + p.Doc.Publication.Name
	if err := schema.Validate(p.Doc); err != nil {
		t.Fatalf("builder produced invalid doc: %v", err)
	}
	s, err := Load(p.Doc, p.Components, pythonHosted)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestNoopServable(t *testing.T) {
	s := loadPkg(t, NoopPackage(), true)
	out, err := s.Run("anything")
	if err != nil {
		t.Fatal(err)
	}
	if out != "hello world" {
		t.Fatalf("noop returned %v", out)
	}
	if !s.PythonHosted() {
		t.Fatal("should be python hosted")
	}
}

func TestCIFAR10Servable(t *testing.T) {
	pkg, err := CIFAR10Package(1)
	if err != nil {
		t.Fatal(err)
	}
	s := loadPkg(t, pkg, false)
	rng := rand.New(rand.NewSource(1))
	input := make([]any, 32*32*3)
	for i := range input {
		input[i] = rng.Float64()
	}
	out, err := s.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	preds, ok := out.([]any)
	if !ok || len(preds) != 5 {
		t.Fatalf("want 5 predictions, got %v", out)
	}
	first, ok := preds[0].(map[string]any)
	if !ok || first["label"] == "" {
		t.Fatalf("bad prediction shape: %v", preds[0])
	}
}

func TestCIFAR10WrongInputSize(t *testing.T) {
	pkg, _ := CIFAR10Package(1)
	s := loadPkg(t, pkg, false)
	if _, err := s.Run([]any{1.0, 2.0}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("want ErrBadInput, got %v", err)
	}
	if _, err := s.Run("not an array"); !errors.Is(err, ErrBadInput) {
		t.Fatalf("want ErrBadInput for string, got %v", err)
	}
}

func TestInceptionServableTop5(t *testing.T) {
	pkg, err := InceptionPackage(1)
	if err != nil {
		t.Fatal(err)
	}
	s := loadPkg(t, pkg, false)
	input := make([]float32, 64*64*3)
	rng := rand.New(rand.NewSource(2))
	for i := range input {
		input[i] = rng.Float32()
	}
	out, err := s.RunNative(input)
	if err != nil {
		t.Fatal(err)
	}
	preds := out.([]any)
	if len(preds) != 5 {
		t.Fatalf("inception should return top-5, got %d", len(preds))
	}
	label := preds[0].(map[string]any)["label"].(string)
	if !strings.HasPrefix(label, "imagenet_") {
		t.Fatalf("unexpected label %q", label)
	}
}

func TestMatminerPipelineStages(t *testing.T) {
	util := loadPkg(t, MatminerUtilPackage(), true)
	out, err := util.Run("NaCl")
	if err != nil {
		t.Fatal(err)
	}
	fractions, ok := out.(map[string]any)
	if !ok || len(fractions) != 2 {
		t.Fatalf("parse output wrong: %v", out)
	}

	feat := loadPkg(t, MatminerFeaturizePackage(), true)
	out2, err := feat.Run(fractions)
	if err != nil {
		t.Fatal(err)
	}
	features, ok := out2.([]any)
	if !ok || len(features) < 70 {
		t.Fatalf("featurize output wrong: %T len=%d", out2, len(features))
	}

	pkg, err := MatminerModelPackage(150, 3)
	if err != nil {
		t.Fatal(err)
	}
	model := loadPkg(t, pkg, true)
	out3, err := model.Run(features)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out3.(float64); !ok {
		t.Fatalf("model should return a float, got %T", out3)
	}
}

func TestMatminerUtilBadFormula(t *testing.T) {
	util := loadPkg(t, MatminerUtilPackage(), true)
	if _, err := util.Run("Xx9"); err == nil {
		t.Fatal("unknown element should error")
	}
	if _, err := util.Run(42.0); err == nil {
		t.Fatal("non-string input should error")
	}
}

func TestFeaturizeRejectsUnknownElement(t *testing.T) {
	feat := loadPkg(t, MatminerFeaturizePackage(), true)
	if _, err := feat.Run(map[string]any{"Zz": 1.0}); err == nil {
		t.Fatal("unknown element should error")
	}
	if _, err := feat.Run(map[string]any{}); err == nil {
		t.Fatal("empty composition should error")
	}
}

func TestLoadErrors(t *testing.T) {
	// Missing model component.
	doc := &schema.Document{
		ID: "x/broken",
		Publication: schema.Publication{
			Name: "broken", Title: "X", Authors: []string{"a"},
		},
		Servable: schema.Servable{
			Type:            schema.TypeKeras,
			ModelComponents: map[string]string{"weights": "w"},
			Input:           schema.DataType{Kind: "ndarray"},
			Output:          schema.DataType{Kind: "list"},
		},
	}
	if _, err := Load(doc, nil, false); !errors.Is(err, ErrMissingComponent) {
		t.Fatalf("want missing component, got %v", err)
	}

	// Corrupt model bytes.
	if _, err := Load(doc, map[string][]byte{"model": []byte("junk")}, false); err == nil {
		t.Fatal("corrupt model should fail to load")
	}

	// Unregistered python function.
	doc2 := &schema.Document{
		ID:          "x/ghost",
		Publication: schema.Publication{Name: "ghost", Title: "X", Authors: []string{"a"}},
		Servable: schema.Servable{
			Type: schema.TypePythonFunction, Entry: "ghost:fn",
			Input:  schema.DataType{Kind: "string"},
			Output: schema.DataType{Kind: "string"},
		},
	}
	if _, err := Load(doc2, nil, false); err == nil {
		t.Fatal("unregistered function should fail")
	}

	// Pipelines don't load as runners.
	doc3 := &schema.Document{
		ID:          "x/pipe",
		Publication: schema.Publication{Name: "pipe", Title: "X", Authors: []string{"a"}},
		Servable:    schema.Servable{Type: schema.TypePipeline, Steps: []string{"a", "b"}},
	}
	if _, err := Load(doc3, nil, false); !errors.Is(err, ErrUnsupportedType) {
		t.Fatalf("want unsupported for pipeline, got %v", err)
	}
}

func TestToFloat32Slice(t *testing.T) {
	cases := []any{
		[]float32{1, 2},
		[]float64{1, 2},
		[]any{1.0, 2.0},
	}
	for _, c := range cases {
		out, err := ToFloat32Slice(c)
		if err != nil || len(out) != 2 || out[0] != 1 || out[1] != 2 {
			t.Fatalf("conversion failed for %T: %v %v", c, out, err)
		}
	}
	if _, err := ToFloat32Slice([]any{"nope"}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("non-numeric element should fail, got %v", err)
	}
	if _, err := ToFloat32Slice(map[string]any{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("wrong container should fail, got %v", err)
	}
}

func TestTomographyFunctions(t *testing.T) {
	RegisterBuiltins()
	doc := &schema.Document{
		ID:          "aps/center",
		Publication: schema.Publication{Name: "center", Title: "Center finder", Authors: []string{"Chard, R."}},
		Servable: schema.Servable{
			Type: schema.TypePythonFunction, Entry: "tomography:find_center",
			Input:  schema.DataType{Kind: "list"},
			Output: schema.DataType{Kind: "dict"},
		},
	}
	s, err := Load(doc, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Slice 1 has much higher gradient energy -> should be the center.
	flat := []any{1.0, 1.0, 1.0, 1.0}
	sharp := []any{0.0, 9.0, 0.0, 9.0}
	out, err := s.Run([]any{flat, sharp, flat})
	if err != nil {
		t.Fatal(err)
	}
	res := out.(map[string]any)
	if res["center_slice"] != 1 {
		t.Fatalf("center should be slice 1: %v", res)
	}

	// Segmentation.
	doc.Servable.Entry = "tomography:segment"
	doc.ID = "aps/segment"
	seg, err := Load(doc, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	out2, err := seg.Run([]any{0.0, 0.1, 0.9, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	m := out2.(map[string]any)
	if m["cell_fraction"] != 0.5 {
		t.Fatalf("segmentation fraction wrong: %v", m)
	}
}

func TestPaperServables(t *testing.T) {
	pkgs, err := PaperServables(1)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"noop", "inception", "cifar10", "matminer-util", "matminer-featurize", "matminer-model"}
	for _, name := range want {
		pkg, ok := pkgs[name]
		if !ok {
			t.Fatalf("missing servable %s", name)
		}
		if err := schema.Validate(pkg.Doc); err != nil {
			t.Fatalf("%s: invalid doc: %v", name, err)
		}
	}
}

func TestPythonHostedAddsNoSemanticChange(t *testing.T) {
	pkg, _ := CIFAR10Package(5)
	native := loadPkg(t, pkg, false)
	pkg2, _ := CIFAR10Package(5)
	hosted := loadPkg(t, pkg2, true)

	input := make([]float32, 32*32*3)
	for i := range input {
		input[i] = float32(i%7) / 7
	}
	a, err := native.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hosted.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	la := a.([]any)[0].(map[string]any)["label"]
	lb := b.([]any)[0].(map[string]any)["label"]
	if la != lb {
		t.Fatalf("hosting must not change results: %v vs %v", la, lb)
	}
}
