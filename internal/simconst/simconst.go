// Package simconst collects, in one audited place, every environmental
// constant this reproduction injects instead of measuring on the paper's
// testbed. Each constant cites the paper section it comes from.
//
// Everything else in the repository is really computed: convolutions,
// tree traversals, featurization, JSON/binary encoding, socket I/O. Only
// the costs of hardware and software we cannot run offline (the WAN
// between AWS and Argonne, the CPython interpreter, WSGI, container
// cold starts) are represented by these constants.
package simconst

import "time"

// Network round-trip times, §V-A "Experimental Setup".
//
// The Management Service ran on Amazon EC2; the Task Manager ran on
// Cooley at the ALCF; servables ran on PetrelKube, a 14-node Kubernetes
// cluster co-located with Cooley. The paper reports the two measured
// RTTs below and notes that "these overheads are consistent across our
// tests and are present regardless of executor or serving infrastructure
// used."
const (
	// RTTManagementToTM is the EC2 <-> Cooley round-trip time (20.7 ms).
	RTTManagementToTM = 20700 * time.Microsecond

	// RTTTMToCluster is the Cooley <-> PetrelKube round-trip time (0.17 ms).
	RTTTMToCluster = 170 * time.Microsecond

	// ClusterInternalRTT is the pod <-> pod round-trip within PetrelKube
	// (40GbE, same switch fabric). Not reported by the paper; set below
	// the TM<->cluster RTT. It matters only for Clipper, whose query
	// frontend forwards requests to model containers in-cluster.
	ClusterInternalRTT = 120 * time.Microsecond

	// LinkBandwidth approximates the 40GbE interconnect (§V-A) in
	// bytes/second. Input transfer for image servables is charged
	// against this (the paper: "higher overheads associated with
	// Inception and CIFAR-10 are due to their need to transfer
	// substantial input data").
	LinkBandwidth = 40e9 / 8 // 40 Gb/s in B/s

	// WANBandwidth is the effective EC2 <-> Argonne throughput. The
	// paper does not report it; 1 Gb/s is a typical single-stream WAN
	// figure and only shifts request time for large inputs.
	WANBandwidth = 1e9 / 8
)

// Runtime factors, calibrated from Fig. 8's C++-vs-Python contrast.
//
// TensorFlow Serving's core is C++ and "outperforms Python-based
// systems" (§V-B5). Our NN engine plays the role of the C++ runtime at
// native Go speed; Python-hosted paths (Parsl/IPP workers, SageMaker
// Flask, Clipper model containers) multiply compute by PythonCallFactor
// and add PythonCallOverhead per call.
const (
	// PythonCallFactor slows model math executed inside the simulated
	// CPython bridge. Fig. 8 shows Python-based serving ~2-3x slower
	// than tensorflow_model_server on the same model.
	PythonCallFactor = 2.5

	// PythonCallOverhead is the fixed cost of entering the interpreter,
	// deserializing arguments and boxing results for one call.
	PythonCallOverhead = 250 * time.Microsecond

	// PythonImportCost is the one-time interpreter start + import cost
	// paid when a servable container cold-starts (never per request).
	PythonImportCost = 750 * time.Millisecond

	// FlaskRequestOverhead is the per-request WSGI routing/parse cost of
	// the SageMaker Flask inference app, beyond generic HTTP handling.
	// Calibrated from the Fig. 8 SageMaker-Flask vs TFS-REST gap.
	FlaskRequestOverhead = 1500 * time.Microsecond
)

// Dispatch and deployment costs.
const (
	// DispatchOverhead is the per-task cost of the Parsl/IPP dispatcher
	// on the Task Manager: route selection, serialization into the IPP
	// channel, completion bookkeeping. It is the mechanism behind
	// Fig. 7's throughput saturation ("task dispatch activities
	// eventually come to dominate execution time").
	DispatchOverhead = 300 * time.Microsecond

	// ContainerStartLatency is the docker-pull-and-start cost charged
	// when a container instance launches (deployment time only).
	ContainerStartLatency = 400 * time.Millisecond

	// PodStartLatency is the additional Kubernetes pod scheduling +
	// kubelet sync latency per pod (deployment time only).
	PodStartLatency = 150 * time.Millisecond

	// ClipperFrontendOverhead is Clipper's query-frontend cost per
	// request (queue management, container RPC framing). Clipper is a
	// compiled frontend; keep it small.
	ClipperFrontendOverhead = 200 * time.Microsecond
)

// Scale controls the simulated time dilation. All injected *latency*
// constants above are divided by Scale at the points they are applied,
// letting tests run with compressed time (Scale > 1) while benchmarks use
// real constants (Scale == 1). Compute costs are never scaled — they are
// real work.
//
// Scale is set once at process start (test main / harness flag) and read
// thereafter; it is intentionally a plain package variable, not atomic.
var Scale = 1.0

// D scales an injected latency constant by the global Scale factor.
func D(d time.Duration) time.Duration {
	if Scale == 1.0 {
		return d
	}
	return time.Duration(float64(d) / Scale)
}
