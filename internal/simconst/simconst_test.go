package simconst

import (
	"testing"
	"time"
)

func TestPaperConstants(t *testing.T) {
	// §V-A: "The average Internet Protocol round-trip-time between the
	// Task Manager and PetrelKube ... is 0.17ms. The Management Service
	// ... has an average round-trip-time to the Task Manager of 20.7ms."
	if RTTManagementToTM != 20700*time.Microsecond {
		t.Fatalf("MS<->TM RTT must be the paper's 20.7ms, got %v", RTTManagementToTM)
	}
	if RTTTMToCluster != 170*time.Microsecond {
		t.Fatalf("TM<->cluster RTT must be the paper's 0.17ms, got %v", RTTTMToCluster)
	}
}

func TestScaleD(t *testing.T) {
	old := Scale
	defer func() { Scale = old }()

	Scale = 1
	if D(100*time.Millisecond) != 100*time.Millisecond {
		t.Fatal("scale 1 must be identity")
	}
	Scale = 10
	if D(100*time.Millisecond) != 10*time.Millisecond {
		t.Fatalf("scale 10 should compress 10x, got %v", D(100*time.Millisecond))
	}
	Scale = 1000
	if D(time.Second) != time.Millisecond {
		t.Fatalf("scale 1000 wrong: %v", D(time.Second))
	}
}

func TestRelativeMagnitudes(t *testing.T) {
	// The experiments depend on these orderings; breaking them silently
	// changes every figure's shape.
	if RTTTMToCluster >= RTTManagementToTM {
		t.Fatal("lab RTT must be far below WAN RTT")
	}
	if PythonCallFactor <= 1 {
		t.Fatal("Python must be slower than the native runtime (Fig. 8)")
	}
	if DispatchOverhead <= 0 || DispatchOverhead >= 10*time.Millisecond {
		t.Fatal("dispatch overhead out of plausible range (Fig. 7 ceiling)")
	}
	if ContainerStartLatency < 50*time.Millisecond {
		t.Fatal("container start must be deployment-scale, not request-scale")
	}
}
