// Package store is the Management Service's durability seam: an
// append-only log of repository state transitions plus periodic
// whole-state checkpoints, behind a narrow interface the core service
// mutates through. The paper's hosted DLHub keeps this metadata in a
// managed database; the reproduction's single-node stand-in is a
// write-ahead log (wal.go) whose checkpoint format is the existing gob
// snapshot, so a directory written by the old snapshot-only mode is a
// valid (record-free) store. A Null backend keeps tests and the bench
// testbed free of any I/O.
//
// Contract highlights:
//
//   - Append is atomic per record (length+CRC32 framing): a crash mid
//     write loses at most that one record, never corrupts earlier ones.
//   - Recover = restore the last checkpoint, then re-apply the record
//     tail in append order. A torn or corrupt final record is truncated
//     with a warning — it is the in-flight mutation the crash interrupted.
//   - Compaction folds the tail into a fresh checkpoint and truncates
//     the log; it is triggered by record-count/byte thresholds or an
//     explicit Checkpoint call. Replay handlers must therefore be
//     idempotent: a record may describe a mutation the checkpoint
//     already contains (the checkpoint ran between the in-memory
//     mutation and its append).
package store

import "io"

// Record is one durable state transition. Kind names the mutation
// ("publish", "deploy", ...); Data is an opaque payload the appender
// knows how to re-apply. Seq is assigned by the store on append and
// strictly increases across compactions.
type Record struct {
	Seq  uint64
	Kind string
	Data []byte
}

// Stats are the store's observability counters, shaped for the
// /api/v2/stats "wal" block.
type Stats struct {
	// Records appended over the store's lifetime (survives compaction).
	Records uint64 `json:"records"`
	// Bytes currently in the log tail (resets at compaction).
	Bytes uint64 `json:"bytes"`
	// Compactions completed (checkpoint written + log truncated).
	Compactions uint64 `json:"compactions"`
	// LastCompactNS is the wall-clock time of the last compaction,
	// Unix nanoseconds (0 = never).
	LastCompactNS int64 `json:"last_compact_ns"`
}

// RecoveryInfo reports what Recover found.
type RecoveryInfo struct {
	// CheckpointLoaded reports a checkpoint existed and was restored.
	CheckpointLoaded bool
	// Replayed counts log records re-applied after the checkpoint.
	Replayed int
	// Truncated reports a torn/corrupt tail record was dropped.
	Truncated bool
}

// Store is what the core repository's mutations flow through.
//
// Usage order: SetCheckpointer, Recover (exactly once, before any
// Append), then Append per mutation; Close on shutdown. Append must
// never be called while holding locks the checkpointer acquires —
// compaction runs the checkpointer while blocking appends.
type Store interface {
	// Append durably logs one state transition. The store assigns
	// rec.Seq. An error means the record may not survive a crash; the
	// in-memory mutation has already happened, so callers log loudly
	// rather than unwind.
	Append(rec Record) error
	// SetCheckpointer registers the whole-state serializer compaction
	// and Recover-time re-checkpointing call.
	SetCheckpointer(fn func(w io.Writer) error)
	// Recover restores the last checkpoint via restore (skipped when no
	// checkpoint exists), then re-applies the log tail via apply in
	// append order. Returns after the store is ready for Append.
	Recover(restore func(r io.Reader) error, apply func(rec Record) error) (RecoveryInfo, error)
	// Checkpoint forces a compaction: write a fresh checkpoint, then
	// truncate the log.
	Checkpoint() error
	// Stats snapshots the counters.
	Stats() Stats
	// Close flushes and releases resources. Append after Close errors.
	Close() error
}

// Null is the no-op in-memory backend: every operation succeeds and
// nothing is retained. It exists so code paths that require a non-nil
// Store (generic harnesses, tests) pay nothing; the core service
// additionally skips payload encoding entirely when its configured
// Store is nil.
type Null struct{}

// NewNull returns the no-op backend.
func NewNull() *Null { return &Null{} }

func (*Null) Append(Record) error                   { return nil }
func (*Null) SetCheckpointer(func(io.Writer) error) {}
func (*Null) Recover(func(r io.Reader) error, func(rec Record) error) (RecoveryInfo, error) {
	return RecoveryInfo{}, nil
}
func (*Null) Checkpoint() error { return nil }
func (*Null) Stats() Stats      { return Stats{} }
func (*Null) Close() error      { return nil }
