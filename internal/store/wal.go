package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// WAL file layout inside Options.Dir:
//
//	repository.gob   last checkpoint (the legacy snapshot format — a
//	                 directory written by snapshot-only mode is a valid
//	                 store with an empty log)
//	wal.log          record tail appended since that checkpoint
//
// Record framing, all little-endian:
//
//	[4B body length][4B CRC32-IEEE of body][body]
//	body = [8B seq][2B kind length][kind][data]
//
// The CRC covers the whole body, so a torn write (crash mid-append) or
// bit rot in the final record is detected on recovery and the tail is
// truncated at the last intact frame — at most the single in-flight
// mutation is lost, never an earlier one.

const (
	walName        = "wal.log"
	checkpointName = "repository.gob"
	frameHeaderLen = 8
	// maxRecordLen rejects absurd frame lengths during recovery scan —
	// a corrupt length field must not drive a gigabyte allocation.
	maxRecordLen = 1 << 30
)

// Options configures a WAL store.
type Options struct {
	// Dir holds the checkpoint and log (created if missing).
	Dir string
	// Sync fsyncs the log after every append (the durability setting;
	// off trades the last few records for append latency).
	Sync bool
	// CompactEvery triggers compaction once this many records sit in
	// the tail (default 4096; < 0 disables the record trigger).
	CompactEvery int
	// CompactBytes triggers compaction once the tail reaches this many
	// bytes (default 32 MiB; < 0 disables the byte trigger).
	CompactBytes int64
	// Logf receives recovery warnings (default log.Printf).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.CompactEvery == 0 {
		o.CompactEvery = 4096
	}
	if o.CompactBytes == 0 {
		o.CompactBytes = 32 << 20
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// WAL is the durable Store: an append-only record log compacted into
// gob checkpoints. Safe for concurrent use.
type WAL struct {
	opts Options

	// cpMu guards the checkpointer registration only.
	cpMu       sync.Mutex
	checkpoint func(w io.Writer) error

	// mu serializes every log/file operation. Checkpoint holds it for
	// the whole checkpoint write, so appends block (briefly) during
	// compaction — which is exactly what makes truncation safe: the
	// checkpoint provably contains every appended record.
	mu        sync.Mutex
	f         *os.File
	seq       uint64
	recovered bool
	closed    bool

	tailRecords int
	tailBytes   int64
	total       uint64
	compactions uint64
	lastCompact int64

	compactCh chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup
}

// Open prepares a WAL store in opts.Dir. Call SetCheckpointer and then
// Recover before the first Append.
func Open(opts Options) (*WAL, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("store: Options.Dir required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	w := &WAL{
		opts:      opts,
		compactCh: make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	w.wg.Add(1)
	go w.compactLoop()
	return w, nil
}

// SetCheckpointer registers the whole-state serializer.
func (w *WAL) SetCheckpointer(fn func(wr io.Writer) error) {
	w.cpMu.Lock()
	w.checkpoint = fn
	w.cpMu.Unlock()
}

func (w *WAL) checkpointer() func(wr io.Writer) error {
	w.cpMu.Lock()
	defer w.cpMu.Unlock()
	return w.checkpoint
}

// Recover restores the checkpoint (if any), replays the log tail, and
// truncates a torn final record. After a non-empty replay it compacts,
// so every boot starts from a fresh checkpoint and an empty tail.
func (w *WAL) Recover(restore func(r io.Reader) error, apply func(rec Record) error) (RecoveryInfo, error) {
	var info RecoveryInfo

	cp, err := os.Open(filepath.Join(w.opts.Dir, checkpointName))
	switch {
	case err == nil:
		rerr := restore(bufio.NewReader(cp))
		cp.Close()
		if rerr != nil {
			return info, fmt.Errorf("store: checkpoint restore: %w", rerr)
		}
		info.CheckpointLoaded = true
	case os.IsNotExist(err):
		// First boot (or legacy snapshot dir with no save yet).
	default:
		return info, err
	}

	w.mu.Lock()
	f, err := os.OpenFile(filepath.Join(w.opts.Dir, walName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		w.mu.Unlock()
		return info, err
	}
	good, records, bytes, truncated, err := w.scan(f, apply)
	if err != nil {
		f.Close()
		w.mu.Unlock()
		return info, err
	}
	if truncated {
		if err := f.Truncate(good); err != nil {
			f.Close()
			w.mu.Unlock()
			return info, fmt.Errorf("store: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			w.mu.Unlock()
			return info, err
		}
		w.opts.Logf("store: dropped torn record at log offset %d (the in-flight mutation when the last run died)", good)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		w.mu.Unlock()
		return info, err
	}
	w.f = f
	w.recovered = true
	w.tailRecords = records
	w.tailBytes = good
	w.total = w.seq
	info.Replayed = records
	info.Truncated = truncated
	w.mu.Unlock()

	// Fold a non-empty tail into a fresh checkpoint now, while the
	// replayed state is known-consistent — recovery after the NEXT
	// crash then starts from here instead of re-replaying.
	if records > 0 && w.checkpointer() != nil {
		if err := w.Checkpoint(); err != nil {
			return info, fmt.Errorf("store: post-recovery compaction: %w", err)
		}
	}
	_ = bytes
	return info, nil
}

// scan replays intact frames through apply and reports the offset of
// the last intact frame end, the record count, total bytes consumed,
// and whether a torn/corrupt tail was found. Caller holds w.mu.
func (w *WAL) scan(f *os.File, apply func(rec Record) error) (good int64, records int, bytes int64, truncated bool, err error) {
	r := bufio.NewReader(f)
	var header [frameHeaderLen]byte
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			if err == io.EOF {
				return good, records, bytes, false, nil
			}
			// Short header: torn mid-frame.
			return good, records, bytes, true, nil
		}
		bodyLen := binary.LittleEndian.Uint32(header[0:4])
		wantCRC := binary.LittleEndian.Uint32(header[4:8])
		if bodyLen < 10 || bodyLen > maxRecordLen {
			return good, records, bytes, true, nil
		}
		body := make([]byte, bodyLen)
		if _, err := io.ReadFull(r, body); err != nil {
			return good, records, bytes, true, nil
		}
		if crc32.ChecksumIEEE(body) != wantCRC {
			return good, records, bytes, true, nil
		}
		seq := binary.LittleEndian.Uint64(body[0:8])
		kindLen := int(binary.LittleEndian.Uint16(body[8:10]))
		if 10+kindLen > len(body) {
			return good, records, bytes, true, nil
		}
		rec := Record{
			Seq:  seq,
			Kind: string(body[10 : 10+kindLen]),
			Data: body[10+kindLen:],
		}
		if err := apply(rec); err != nil {
			return good, records, bytes, false, fmt.Errorf("store: replay record %d (%s): %w", seq, rec.Kind, err)
		}
		if seq > w.seq {
			w.seq = seq
		}
		good += int64(frameHeaderLen) + int64(bodyLen)
		records++
		bytes = good
	}
}

// Append durably logs one record. The store assigns rec.Seq.
func (w *WAL) Append(rec Record) error {
	body := make([]byte, 10+len(rec.Kind)+len(rec.Data))
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("store: append on closed WAL")
	}
	if !w.recovered {
		return errors.New("store: append before Recover")
	}
	w.seq++
	binary.LittleEndian.PutUint64(body[0:8], w.seq)
	binary.LittleEndian.PutUint16(body[8:10], uint16(len(rec.Kind)))
	copy(body[10:], rec.Kind)
	copy(body[10+len(rec.Kind):], rec.Data)

	frame := make([]byte, frameHeaderLen+len(body))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(body))
	copy(frame[frameHeaderLen:], body)

	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if w.opts.Sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("store: append sync: %w", err)
		}
	}
	w.tailRecords++
	w.tailBytes += int64(len(frame))
	w.total++
	if (w.opts.CompactEvery > 0 && w.tailRecords >= w.opts.CompactEvery) ||
		(w.opts.CompactBytes > 0 && w.tailBytes >= w.opts.CompactBytes) {
		select {
		case w.compactCh <- struct{}{}:
		default:
		}
	}
	return nil
}

// compactLoop runs threshold-triggered compactions in the background so
// the append that crossed the threshold never pays the checkpoint.
func (w *WAL) compactLoop() {
	defer w.wg.Done()
	for {
		select {
		case <-w.done:
			return
		case <-w.compactCh:
			if err := w.Checkpoint(); err != nil {
				w.opts.Logf("store: background compaction failed: %v", err)
			}
		}
	}
}

// Checkpoint writes a fresh checkpoint through the registered
// checkpointer and truncates the log. Appends block for the duration,
// which is what makes the truncation safe: the checkpoint state
// provably includes every record in the log being dropped.
func (w *WAL) Checkpoint() error {
	fn := w.checkpointer()
	if fn == nil {
		return errors.New("store: no checkpointer registered")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("store: checkpoint on closed WAL")
	}
	if !w.recovered {
		return errors.New("store: checkpoint before Recover")
	}
	tmp, err := os.CreateTemp(w.opts.Dir, checkpointName+".tmp-*")
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(tmp)
	werr := fn(bw)
	if werr == nil {
		werr = bw.Flush()
	}
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name()) //nolint:errcheck
		return fmt.Errorf("store: checkpoint write: %w", werr)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(w.opts.Dir, checkpointName)); err != nil {
		os.Remove(tmp.Name()) //nolint:errcheck
		return err
	}
	if err := syncDir(w.opts.Dir); err != nil {
		return err
	}
	// The checkpoint is durable; the logged records it contains are now
	// redundant. Truncate and rewind.
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("store: log truncate: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.tailRecords = 0
	w.tailBytes = 0
	w.compactions++
	w.lastCompact = time.Now().UnixNano()
	return nil
}

// Stats snapshots the counters.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Stats{
		Records:       w.total,
		Bytes:         uint64(w.tailBytes),
		Compactions:   w.compactions,
		LastCompactNS: w.lastCompact,
	}
}

// Close flushes and closes the log. No final checkpoint is taken —
// callers that want a clean shutdown call Checkpoint first.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	close(w.done)
	w.wg.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// syncDir fsyncs a directory so a just-renamed file's directory entry
// is durable — without it a crash after rename can lose the rename.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
