package store

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// kvStore is the test harness: a toy state machine whose mutations are
// "set k v" records and whose checkpoint is the JSON of the whole map.
type kvStore struct {
	mu sync.Mutex
	m  map[string]string
}

func newKV() *kvStore { return &kvStore{m: make(map[string]string)} }

func (k *kvStore) set(s Store, key, val string) error {
	k.mu.Lock()
	k.m[key] = val
	k.mu.Unlock()
	return s.Append(Record{Kind: "set", Data: []byte(key + "=" + val)})
}

func (k *kvStore) checkpoint(w io.Writer) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	return json.NewEncoder(w).Encode(k.m)
}

func (k *kvStore) restore(r io.Reader) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	return json.NewDecoder(r).Decode(&k.m)
}

func (k *kvStore) apply(rec Record) error {
	if rec.Kind != "set" {
		return fmt.Errorf("unknown kind %q", rec.Kind)
	}
	for i := 0; i < len(rec.Data); i++ {
		if rec.Data[i] == '=' {
			k.mu.Lock()
			k.m[string(rec.Data[:i])] = string(rec.Data[i+1:])
			k.mu.Unlock()
			return nil
		}
	}
	return fmt.Errorf("bad record %q", rec.Data)
}

func (k *kvStore) snapshot() map[string]string {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make(map[string]string, len(k.m))
	for key, val := range k.m {
		out[key] = val
	}
	return out
}

func openWAL(t *testing.T, dir string, kv *kvStore, opts Options) (*WAL, RecoveryInfo) {
	t.Helper()
	opts.Dir = dir
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	w, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	w.SetCheckpointer(kv.checkpoint)
	info, err := w.Recover(kv.restore, kv.apply)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return w, info
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	kv := newKV()
	w, info := openWAL(t, dir, kv, Options{CompactEvery: -1, CompactBytes: -1})
	if info.CheckpointLoaded || info.Replayed != 0 {
		t.Fatalf("fresh dir: info = %+v", info)
	}
	for i := 0; i < 50; i++ {
		if err := kv.set(w, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("set: %v", err)
		}
	}
	want := kv.snapshot()
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	kv2 := newKV()
	w2, info := openWAL(t, dir, kv2, Options{CompactEvery: -1, CompactBytes: -1})
	defer w2.Close()
	if info.CheckpointLoaded {
		// Post-recovery compaction wrote one; either way state matches.
		t.Logf("checkpoint loaded on second boot")
	}
	if got := kv2.snapshot(); len(got) != len(want) {
		t.Fatalf("recovered %d keys, want %d", len(got), len(want))
	} else {
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("recovered[%q] = %q, want %q", k, got[k], v)
			}
		}
	}
	if info.Replayed != 50 {
		t.Fatalf("Replayed = %d, want 50", info.Replayed)
	}
}

// TestWALTornTail cuts the log mid-frame and checks recovery keeps every
// earlier record, drops exactly the torn one, and physically truncates.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	kv := newKV()
	w, _ := openWAL(t, dir, kv, Options{CompactEvery: -1, CompactBytes: -1})
	for i := 0; i < 10; i++ {
		if err := kv.set(w, fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatalf("set: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Tear the final record: chop 3 bytes off the log.
	logPath := filepath.Join(dir, walName)
	fi, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logPath, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	kv2 := newKV()
	w2, info := openWAL(t, dir, kv2, Options{CompactEvery: -1, CompactBytes: -1})
	defer w2.Close()
	if !info.Truncated {
		t.Fatal("expected Truncated after torn tail")
	}
	if info.Replayed != 9 {
		t.Fatalf("Replayed = %d, want 9 (k9 was in flight)", info.Replayed)
	}
	got := kv2.snapshot()
	if _, ok := got["k9"]; ok {
		t.Fatal("torn record k9 survived recovery")
	}
	for i := 0; i < 9; i++ {
		if got[fmt.Sprintf("k%d", i)] != "v" {
			t.Fatalf("k%d lost", i)
		}
	}
}

// TestWALCorruptTail flips a byte inside the last record's body: the CRC
// must reject it and recovery must truncate from there.
func TestWALCorruptTail(t *testing.T) {
	dir := t.TempDir()
	kv := newKV()
	w, _ := openWAL(t, dir, kv, Options{CompactEvery: -1, CompactBytes: -1})
	for i := 0; i < 5; i++ {
		if err := kv.set(w, fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatalf("set: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	logPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(logPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	kv2 := newKV()
	w2, info := openWAL(t, dir, kv2, Options{CompactEvery: -1, CompactBytes: -1})
	defer w2.Close()
	if !info.Truncated || info.Replayed != 4 {
		t.Fatalf("info = %+v, want Truncated with 4 replayed", info)
	}
}

// TestWALCompaction checks the record-count trigger: after crossing
// CompactEvery the background compactor folds the tail into a
// checkpoint, stats report it, and recovery needs no replay.
func TestWALCompaction(t *testing.T) {
	dir := t.TempDir()
	kv := newKV()
	w, _ := openWAL(t, dir, kv, Options{CompactEvery: 8, CompactBytes: -1})
	for i := 0; i < 32; i++ {
		if err := kv.set(w, fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatalf("set: %v", err)
		}
	}
	// The compactor is async; force a final deterministic checkpoint.
	if err := w.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	st := w.Stats()
	if st.Compactions == 0 {
		t.Fatal("no compaction recorded")
	}
	if st.Records != 32 {
		t.Fatalf("Records = %d, want 32 (lifetime count survives compaction)", st.Records)
	}
	if st.Bytes != 0 {
		t.Fatalf("Bytes = %d, want 0 after checkpoint", st.Bytes)
	}
	if st.LastCompactNS == 0 {
		t.Fatal("LastCompactNS unset")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	kv2 := newKV()
	w2, info := openWAL(t, dir, kv2, Options{CompactEvery: 8, CompactBytes: -1})
	defer w2.Close()
	if !info.CheckpointLoaded {
		t.Fatal("checkpoint not loaded")
	}
	if info.Replayed != 0 {
		t.Fatalf("Replayed = %d, want 0 (log was truncated at checkpoint)", info.Replayed)
	}
	if len(kv2.snapshot()) != 32 {
		t.Fatalf("recovered %d keys, want 32", len(kv2.snapshot()))
	}
}

// TestWALRecoveryCompacts: a boot that replays a non-empty tail
// immediately compacts so the next boot starts clean.
func TestWALRecoveryCompacts(t *testing.T) {
	dir := t.TempDir()
	kv := newKV()
	w, _ := openWAL(t, dir, kv, Options{CompactEvery: -1, CompactBytes: -1})
	for i := 0; i < 4; i++ {
		if err := kv.set(w, fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	kv2 := newKV()
	w2, info := openWAL(t, dir, kv2, Options{CompactEvery: -1, CompactBytes: -1})
	if info.Replayed != 4 {
		t.Fatalf("Replayed = %d, want 4", info.Replayed)
	}
	if w2.Stats().Compactions != 1 {
		t.Fatalf("Compactions = %d, want 1 (post-recovery fold)", w2.Stats().Compactions)
	}
	w2.Close()

	kv3 := newKV()
	w3, info := openWAL(t, dir, kv3, Options{CompactEvery: -1, CompactBytes: -1})
	defer w3.Close()
	if !info.CheckpointLoaded || info.Replayed != 0 {
		t.Fatalf("third boot info = %+v, want checkpoint + empty tail", info)
	}
}

func TestWALAppendBeforeRecover(t *testing.T) {
	w, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(Record{Kind: "set", Data: []byte("a=b")}); err == nil {
		t.Fatal("Append before Recover must error")
	}
}

// TestWALConcurrentAppend exercises append+checkpoint+stats under
// concurrency (meaningful under -race).
func TestWALConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	kv := newKV()
	w, _ := openWAL(t, dir, kv, Options{CompactEvery: 16, CompactBytes: -1})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := kv.set(w, fmt.Sprintf("g%d-k%d", g, i), "v"); err != nil {
					t.Errorf("set: %v", err)
					return
				}
				if i%20 == 0 {
					w.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	kv2 := newKV()
	w2, _ := openWAL(t, dir, kv2, Options{})
	defer w2.Close()
	if got := len(kv2.snapshot()); got != 200 {
		t.Fatalf("recovered %d keys, want 200", got)
	}
}

func TestNullStore(t *testing.T) {
	n := NewNull()
	if _, err := n.Recover(nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := n.Append(Record{Kind: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := n.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := n.Stats(); st != (Stats{}) {
		t.Fatalf("Null stats = %+v", st)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}
