// Package taskmanager implements the DLHub Task Manager of §IV-B: a
// per-site agent that "is responsible for monitoring the DLHub task
// queue(s) and then executing waiting tasks ... deploying servables
// using one of the supported executors and then routing tasks to
// appropriate servables. When a Task Manager is first deployed it
// registers itself with the Management Service and specifies which
// executors and DLHub servables it can launch."
//
// The Task Manager also owns the memoization cache of §V-B2/§V-B5: "Parsl
// maintains a cache at the Task Manager, greatly reducing serving
// latency" — cached hits answer without touching the cluster at all,
// the structural contrast with Clipper's in-cluster cache. It is the
// second memoization tier: the Management Service's result cache
// (internal/core/cache.go) answers repeats before routing, and the TM
// cache covers repeats that still reach this site (e.g. after a
// service-layer TTL expiry or NoCache runs).
package taskmanager

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/executor"
	"repro/internal/queue"
	"repro/internal/schema"
	"repro/internal/servable"
)

// Queue names shared with the Management Service.
const (
	RegisterQueue = "dlhub.register"
	TaskQueueFmt  = "dlhub.tasks.%s" // per-TM task queue
)

// TaskQueue returns the task queue name for a TM id.
func TaskQueue(tmID string) string { return fmt.Sprintf(TaskQueueFmt, tmID) }

// Task is the wire format of one queued task.
type Task struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"` // run | run_batch | pipeline | deploy | scale | undeploy | drain | ping
	Servable string `json:"servable,omitempty"`
	// Executor routes deploys ("parsl" default; "tfserving-grpc",
	// "tfserving-rest", "sagemaker", "clipper" for comparisons).
	Executor string   `json:"executor,omitempty"`
	Input    any      `json:"input,omitempty"`
	Inputs   []any    `json:"inputs,omitempty"` // batch
	Steps    []string `json:"steps,omitempty"`  // pipeline
	Replicas int      `json:"replicas,omitempty"`
	NoMemo   bool     `json:"no_memo,omitempty"` // per-task memo override
	// Tenant is the submitting tenant's tag ("" = anonymous): set by
	// the Management Service from the resolved caller, carried on the
	// task record and the queue fairness lane.
	Tenant string `json:"tenant,omitempty"`
	// Package carries the servable package for deploys.
	Package *PackageWire `json:"package,omitempty"`
}

// PackageWire is the JSON-safe servable package.
type PackageWire struct {
	Doc        json.RawMessage   `json:"doc"`
	Components map[string][]byte `json:"components,omitempty"`
}

// Reply is the wire format of a task result.
type Reply struct {
	TaskID  string `json:"task_id"`
	OK      bool   `json:"ok"`
	Error   string `json:"error,omitempty"`
	Output  any    `json:"output,omitempty"`
	Outputs []any  `json:"outputs,omitempty"`
	// Timings (µs): inference measured at the servable, invocation
	// measured at the Task Manager (§V-A metrics).
	InferenceMicros  int64 `json:"inference_us,omitempty"`
	InvocationMicros int64 `json:"invocation_us,omitempty"`
	Cached           bool  `json:"cached,omitempty"`
	// Steps decomposes a pipeline reply per step, in execution order.
	// The TM-local monolith path fills the executor-side timings; the
	// Management Service's distributed path adds MS-side request time
	// and cache flags.
	Steps []StepStat `json:"steps,omitempty"`
}

// StepStat reports one pipeline step's execution: where the time went
// and whether a cache tier answered instead of a servable.
type StepStat struct {
	Servable string `json:"servable"`
	// Version is the step's published version at execution time. The
	// TM monolith leaves it 0 — the repository lives at the Management
	// Service, not here.
	Version int `json:"version,omitempty"`
	// InferenceMicros/InvocationMicros are the executor-side timings
	// for this step alone.
	InferenceMicros  int64 `json:"inference_us,omitempty"`
	InvocationMicros int64 `json:"invocation_us,omitempty"`
	// RequestMicros is the MS-side per-step round trip (routing +
	// queue + execute + reply); zero on the TM-local monolith path,
	// which makes the two execution modes distinguishable in a reply.
	RequestMicros int64 `json:"request_us,omitempty"`
	// Cached/CacheHit mirror Reply.Cached and the service-layer
	// cache-hit flag for the individual step (distributed path only).
	Cached   bool `json:"cached,omitempty"`
	CacheHit bool `json:"cache_hit,omitempty"`
}

// Registration announces a TM to the Management Service. Heartbeat
// re-registrations also carry the TM's current queue-depth view, so the
// service-side autoscaler can see load that has already left the broker
// but not yet finished executing.
type Registration struct {
	TMID      string   `json:"tm_id"`
	Executors []string `json:"executors"`
	// Active counts tasks currently executing at this TM (pulled from
	// the queue, reply not yet sent). Zero on initial registration.
	Active int `json:"active,omitempty"`
	// Draining acknowledges a drain: the TM has received the drain task
	// and expects no new work. The Management Service treats it as
	// authoritative — a service that restarted (losing its drain marks)
	// re-learns the state from the next heartbeat.
	Draining bool `json:"draining,omitempty"`
}

// QueueAPI abstracts the broker connection (in-process broker or remote
// netsim-shaped client).
type QueueAPI interface {
	Push(queueName string, body []byte, replyTo, correlationID, tenant string) (string, error)
	Pull(queueName string, timeout time.Duration) (queue.Message, bool, error)
	Ack(queueName, msgID string) error
	Reply(msg queue.Message, body []byte) error
}

// BrokerAdapter adapts an in-process *queue.Broker to QueueAPI.
type BrokerAdapter struct{ B *queue.Broker }

// Push implements QueueAPI.
func (a BrokerAdapter) Push(q string, body []byte, replyTo, corr, tenant string) (string, error) {
	return a.B.Push(q, body, replyTo, corr, tenant), nil
}

// Pull implements QueueAPI.
func (a BrokerAdapter) Pull(q string, timeout time.Duration) (queue.Message, bool, error) {
	msg, ok := a.B.Pull(q, timeout)
	return msg, ok, nil
}

// Ack implements QueueAPI.
func (a BrokerAdapter) Ack(q, id string) error { a.B.Ack(q, id); return nil }

// Reply implements QueueAPI.
func (a BrokerAdapter) Reply(msg queue.Message, body []byte) error { a.B.Reply(msg, body); return nil }

// Config configures a Task Manager.
type Config struct {
	ID string
	// Queue is the broker connection (shaped by netsim for remote TMs).
	Queue QueueAPI
	// Executors available at this site, keyed by route name. "parsl"
	// is the default route.
	Executors map[string]executor.Executor
	// Memoize enables the TM-side cache.
	Memoize bool
	// Pullers is the number of concurrent queue pullers (default 4).
	Pullers int
	// HeartbeatInterval re-announces the TM to the Management Service
	// so it can detect dead sites (0 disables heartbeats).
	HeartbeatInterval time.Duration
}

// TM is a running Task Manager.
type TM struct {
	cfg Config

	memoMu sync.RWMutex
	memo   map[string][]byte // key -> JSON reply body
	memoOn bool
	// memoKeys indexes memo keys per servable so deploy/undeploy can
	// drop exactly that servable's entries: a redeploy may carry a
	// different model under the same name (notably republish-after-
	// unpublish, which restarts at version 1), and its memoized
	// outputs must not survive it — nor linger unreachable.
	memoKeys map[string]map[string]struct{}

	// servable -> executor route, set at deploy time.
	routeMu sync.RWMutex
	routes  map[string]string

	stop     chan struct{}
	stopOnce sync.Once
	// ctx is the TM lifetime context: executor invocations run under it
	// so Close cancels in-flight work instead of orphaning it.
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	statMu    sync.Mutex
	completed uint64
	hits      uint64
	active    int
	// draining is set by a drain task (and cleared by a rejoin task);
	// heartbeats carry it back to the Management Service as the drain
	// acknowledgement.
	draining bool
	// killed marks an abrupt Kill(): the TM must behave like a kill -9
	// victim, so every reply still on its way out is suppressed — the
	// Management Service's dead-TM watchdog is what must observe the
	// loss, not a polite error reply.
	killed bool

	// reg is the registration body template re-marshaled (with the
	// current active count) on every heartbeat.
	reg Registration
}

// New creates and registers a Task Manager and starts its pull loops.
func New(cfg Config) (*TM, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("taskmanager: ID required")
	}
	if cfg.Queue == nil {
		return nil, fmt.Errorf("taskmanager: queue connection required")
	}
	if len(cfg.Executors) == 0 {
		return nil, fmt.Errorf("taskmanager: at least one executor required")
	}
	if cfg.Pullers <= 0 {
		cfg.Pullers = 4
	}
	tm := &TM{
		cfg:      cfg,
		memo:     make(map[string][]byte),
		memoOn:   cfg.Memoize,
		memoKeys: make(map[string]map[string]struct{}),
		routes:   make(map[string]string),
		stop:     make(chan struct{}),
	}
	tm.ctx, tm.cancel = context.WithCancel(context.Background())
	// Register with the Management Service.
	execs := make([]string, 0, len(cfg.Executors))
	for name := range cfg.Executors {
		execs = append(execs, name)
	}
	tm.reg = Registration{TMID: cfg.ID, Executors: execs}
	reg, err := json.Marshal(tm.reg)
	if err != nil {
		return nil, err
	}
	if _, err := cfg.Queue.Push(RegisterQueue, reg, "", "", ""); err != nil {
		return nil, fmt.Errorf("taskmanager: registration failed: %w", err)
	}
	for i := 0; i < cfg.Pullers; i++ {
		tm.wg.Add(1)
		go tm.pullLoop()
	}
	if cfg.HeartbeatInterval > 0 {
		tm.wg.Add(1)
		go tm.heartbeatLoop()
	}
	return tm, nil
}

// heartbeatLoop re-sends the registration periodically; the Management
// Service uses the arrival times for liveness and the carried Active
// count as the TM-side queue-depth signal.
func (tm *TM) heartbeatLoop() {
	defer tm.wg.Done()
	ticker := time.NewTicker(tm.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-tm.stop:
			return
		case <-ticker.C:
			reg := tm.reg
			reg.Active = tm.Active()
			reg.Draining = tm.Draining()
			if body, err := json.Marshal(reg); err == nil {
				tm.cfg.Queue.Push(RegisterQueue, body, "", "", "") //nolint:errcheck — next beat retries
			}
		}
	}
}

// Active reports how many tasks this TM is currently executing.
func (tm *TM) Active() int {
	tm.statMu.Lock()
	defer tm.statMu.Unlock()
	return tm.active
}

// Draining reports whether this TM has acknowledged a drain.
func (tm *TM) Draining() bool {
	tm.statMu.Lock()
	defer tm.statMu.Unlock()
	return tm.draining
}

// SetMemoize toggles the TM cache (cleared when disabled).
func (tm *TM) SetMemoize(on bool) {
	tm.memoMu.Lock()
	tm.memoOn = on
	if !on {
		tm.memo = make(map[string][]byte)
		tm.memoKeys = make(map[string]map[string]struct{})
	}
	tm.memoMu.Unlock()
}

// Stats reports (completed tasks, cache hits).
func (tm *TM) Stats() (uint64, uint64) {
	tm.statMu.Lock()
	defer tm.statMu.Unlock()
	return tm.completed, tm.hits
}

// Close stops the pull loops (in-flight tasks finish first, but their
// executor invocations are canceled via the TM lifetime context).
// Idempotent, and safe after Kill.
func (tm *TM) Close() {
	tm.stopOnce.Do(func() {
		close(tm.stop)
	})
	tm.cancel()
	tm.wg.Wait()
	for _, ex := range tm.cfg.Executors {
		ex.Close()
	}
}

// Kill stops the Task Manager the way `kill -9` would: pull loops and
// heartbeats stop, in-flight executor invocations are canceled, and —
// unlike Close — no reply (not even a failure reply) leaves the site
// for work it had already claimed. Tasks it was executing stay claimed
// in the broker until the Management Service's dead-TM watchdog purges
// them; its executors are NOT closed, because on a real kill the
// serving pods at the cluster site outlive the dead TM process (a
// restarted TM reattaches to them). Fault-injection hook for chaos
// scenarios; production teardown is Close.
func (tm *TM) Kill() {
	tm.statMu.Lock()
	tm.killed = true
	tm.statMu.Unlock()
	tm.stopOnce.Do(func() {
		close(tm.stop)
	})
	tm.cancel()
	tm.wg.Wait()
}

func (tm *TM) pullLoop() {
	defer tm.wg.Done()
	qname := TaskQueue(tm.cfg.ID)
	for {
		select {
		case <-tm.stop:
			return
		default:
		}
		msg, ok, err := tm.cfg.Queue.Pull(qname, 500*time.Millisecond)
		if err != nil {
			// Connection failure: back off briefly, keep trying (the
			// queue provides at-least-once redelivery).
			time.Sleep(50 * time.Millisecond)
			continue
		}
		if !ok {
			continue
		}
		tm.handle(msg)
	}
}

func (tm *TM) handle(msg queue.Message) {
	var task Task
	if err := json.Unmarshal(msg.Body, &task); err != nil {
		tm.reply(msg, Reply{OK: false, Error: "bad task: " + err.Error()})
		return
	}
	tm.statMu.Lock()
	tm.active++
	tm.statMu.Unlock()
	defer func() {
		tm.statMu.Lock()
		tm.active--
		tm.statMu.Unlock()
	}()
	start := time.Now()
	var rep Reply
	switch task.Kind {
	case "ping":
		rep = Reply{OK: true, Output: "pong"}
	case "deploy":
		rep = tm.handleDeploy(&task)
	case "scale":
		rep = tm.handleScale(&task)
	case "undeploy":
		rep = tm.handleUndeploy(&task)
	case "drain":
		rep = tm.handleDrain()
	case "rejoin":
		rep = tm.handleRejoin()
	case "run":
		rep = tm.handleRun(&task)
	case "run_batch":
		rep = tm.handleBatch(&task)
	case "pipeline":
		rep = tm.handlePipeline(&task)
	default:
		rep = Reply{OK: false, Error: fmt.Sprintf("unknown task kind %q", task.Kind)}
	}
	rep.TaskID = task.ID
	if rep.InvocationMicros == 0 {
		rep.InvocationMicros = invocationMicros(start)
	}
	tm.reply(msg, rep)
	tm.statMu.Lock()
	tm.completed++
	tm.statMu.Unlock()
}

func (tm *TM) reply(msg queue.Message, rep Reply) {
	tm.statMu.Lock()
	killed := tm.killed
	tm.statMu.Unlock()
	if killed {
		// A kill -9 victim sends nothing; the claimed message must look
		// lost so the watchdog-and-purge path owns the recovery.
		return
	}
	body, err := json.Marshal(rep)
	if err != nil {
		body, _ = json.Marshal(Reply{TaskID: rep.TaskID, OK: false, Error: "unserializable reply: " + err.Error()})
	}
	tm.cfg.Queue.Reply(msg, body) //nolint:errcheck — redelivery handles loss
}

func (tm *TM) executorFor(task *Task) (executor.Executor, error) {
	route := task.Executor
	if route == "" {
		tm.routeMu.RLock()
		route = tm.routes[task.Servable]
		tm.routeMu.RUnlock()
	}
	if route == "" {
		route = "parsl"
	}
	ex, ok := tm.cfg.Executors[route]
	if !ok {
		return nil, fmt.Errorf("executor %q not available at %s", route, tm.cfg.ID)
	}
	return ex, nil
}

func (tm *TM) handleDeploy(task *Task) Reply {
	if task.Package == nil {
		return Reply{OK: false, Error: "deploy without package"}
	}
	pkg, err := DecodePackage(task.Package)
	if err != nil {
		return Reply{OK: false, Error: err.Error()}
	}
	ex, err := tm.executorFor(task)
	if err != nil {
		return Reply{OK: false, Error: err.Error()}
	}
	replicas := task.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	if err := ex.Deploy(pkg, replicas); err != nil {
		return Reply{OK: false, Error: err.Error()}
	}
	tm.routeMu.Lock()
	tm.routes[pkg.Doc.ID] = routeName(task, ex)
	tm.routeMu.Unlock()
	// A (re)deploy may carry a different model under the same name;
	// drop the previous deployment's memoized outputs.
	tm.invalidateMemo(pkg.Doc.ID)
	return Reply{OK: true, Output: fmt.Sprintf("deployed %s x%d on %s", pkg.Doc.ID, replicas, ex.Name())}
}

func routeName(task *Task, ex executor.Executor) string {
	if task.Executor != "" {
		return task.Executor
	}
	return "parsl"
}

func (tm *TM) handleScale(task *Task) Reply {
	ex, err := tm.executorFor(task)
	if err != nil {
		return Reply{OK: false, Error: err.Error()}
	}
	if err := ex.Scale(task.Servable, task.Replicas); err != nil {
		return Reply{OK: false, Error: err.Error()}
	}
	return Reply{OK: true}
}

// handleDrain acknowledges a graceful drain: the TM keeps serving
// whatever is already in its queue (the Management Service counts that
// as in-flight and waits for it), but flags itself draining so every
// subsequent heartbeat confirms the state. Routing exclusion is the
// service's job — this flag is the acknowledgement, not the mechanism.
func (tm *TM) handleDrain() Reply {
	tm.statMu.Lock()
	tm.draining = true
	tm.statMu.Unlock()
	return Reply{OK: true, Output: "draining"}
}

// handleRejoin reverses a drain acknowledgement: the TM stops asserting
// Draining in its heartbeats, so the site reads as routable again once
// the Management Service clears its own mark. The service clears its
// mark only AFTER this ack round-trips — heartbeats marshaled before
// the ack (still carrying Draining) are covered by the service-side
// rejoin grace window.
func (tm *TM) handleRejoin() Reply {
	tm.statMu.Lock()
	tm.draining = false
	tm.statMu.Unlock()
	return Reply{OK: true, Output: "rejoined"}
}

func (tm *TM) handleUndeploy(task *Task) Reply {
	ex, err := tm.executorFor(task)
	if err != nil {
		return Reply{OK: false, Error: err.Error()}
	}
	if err := ex.Undeploy(task.Servable); err != nil {
		return Reply{OK: false, Error: err.Error()}
	}
	tm.routeMu.Lock()
	delete(tm.routes, task.Servable)
	tm.routeMu.Unlock()
	tm.invalidateMemo(task.Servable)
	return Reply{OK: true}
}

// invocationMicros measures elapsed wall time, clamped to ≥1µs: a 0
// reads as "unset" on the wire (omitempty), and sub-microsecond
// executions (trivial servables on fast hosts) must still report that
// an invocation happened.
func invocationMicros(start time.Time) int64 {
	if us := time.Since(start).Microseconds(); us > 0 {
		return us
	}
	return 1
}

// memoKey hashes servable + canonical input JSON.
func memoKey(servableID string, input any) (string, error) {
	data, err := json.Marshal(input)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(append([]byte(servableID+"\x00"), data...))
	return hex.EncodeToString(sum[:]), nil
}

// invalidateMemo drops a servable's memo entries — the deploy/undeploy
// hook. Deleting (rather than epoch-orphaning) keeps the memo map
// bounded across redeploys.
func (tm *TM) invalidateMemo(servableID string) {
	tm.memoMu.Lock()
	for key := range tm.memoKeys[servableID] {
		delete(tm.memo, key)
	}
	delete(tm.memoKeys, servableID)
	tm.memoMu.Unlock()
}

func (tm *TM) handleRun(task *Task) Reply {
	start := time.Now()
	// Memoization check — served entirely at the TM (§V-B5).
	useMemo := false
	var key string
	tm.memoMu.RLock()
	useMemo = tm.memoOn && !task.NoMemo
	tm.memoMu.RUnlock()
	if useMemo {
		var err error
		key, err = memoKey(task.Servable, task.Input)
		if err == nil {
			tm.memoMu.RLock()
			cached, ok := tm.memo[key]
			tm.memoMu.RUnlock()
			if ok {
				var rep Reply
				if json.Unmarshal(cached, &rep) == nil {
					rep.Cached = true
					rep.InferenceMicros = 0
					rep.InvocationMicros = invocationMicros(start)
					tm.statMu.Lock()
					tm.hits++
					tm.statMu.Unlock()
					return rep
				}
			}
		}
	}

	ex, err := tm.executorFor(task)
	if err != nil {
		return Reply{OK: false, Error: err.Error()}
	}
	res, err := ex.Invoke(tm.ctx, task.Servable, task.Input)
	if err != nil {
		return Reply{OK: false, Error: err.Error()}
	}
	rep := Reply{
		OK:               true,
		Output:           res.Output,
		InferenceMicros:  res.InferenceMicros,
		InvocationMicros: invocationMicros(start),
	}
	if useMemo && key != "" {
		if body, err := json.Marshal(rep); err == nil {
			tm.memoMu.Lock()
			tm.memo[key] = body
			keys := tm.memoKeys[task.Servable]
			if keys == nil {
				keys = make(map[string]struct{})
				tm.memoKeys[task.Servable] = keys
			}
			keys[key] = struct{}{}
			tm.memoMu.Unlock()
		}
	}
	return rep
}

// handleBatch fans a batch out to the executor concurrently, amortizing
// queue and WAN costs over many requests (§V-B3).
func (tm *TM) handleBatch(task *Task) Reply {
	start := time.Now()
	ex, err := tm.executorFor(task)
	if err != nil {
		return Reply{OK: false, Error: err.Error()}
	}
	outs := make([]any, len(task.Inputs))
	errs := make([]error, len(task.Inputs))
	var totalInf int64
	var infMu sync.Mutex
	var wg sync.WaitGroup
	for i, input := range task.Inputs {
		wg.Add(1)
		go func(i int, input any) {
			defer wg.Done()
			res, err := ex.Invoke(tm.ctx, task.Servable, input)
			if err != nil {
				errs[i] = err
				return
			}
			outs[i] = res.Output
			infMu.Lock()
			totalInf += res.InferenceMicros
			infMu.Unlock()
		}(i, input)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return Reply{OK: false, Error: fmt.Sprintf("batch item %d: %v", i, err)}
		}
	}
	return Reply{
		OK:               true,
		Outputs:          outs,
		InferenceMicros:  totalInf,
		InvocationMicros: invocationMicros(start),
	}
}

// handlePipeline chains steps server-side: "data are automatically
// passed between each servable in the pipeline, meaning the entire
// execution is performed server-side" (§VI-D). This is the TM-local
// fast path: the Management Service routes a whole pipeline here only
// when every step is deployed on this one TM; otherwise it orchestrates
// the steps itself across sites (core.runPipelineSteps).
func (tm *TM) handlePipeline(task *Task) Reply {
	start := time.Now()
	if len(task.Steps) < 2 {
		return Reply{OK: false, Error: "pipeline needs at least 2 steps"}
	}
	current := task.Input
	var totalInf int64
	stats := make([]StepStat, 0, len(task.Steps))
	for _, step := range task.Steps {
		stepStart := time.Now()
		stepTask := &Task{Servable: step, Executor: task.Executor, Input: current}
		ex, err := tm.executorFor(stepTask)
		if err != nil {
			return Reply{OK: false, Error: fmt.Sprintf("step %s: %v", step, err)}
		}
		res, err := ex.Invoke(tm.ctx, step, current)
		if err != nil {
			return Reply{OK: false, Error: fmt.Sprintf("step %s: %v", step, err)}
		}
		current = res.Output
		totalInf += res.InferenceMicros
		stats = append(stats, StepStat{
			Servable:         step,
			InferenceMicros:  res.InferenceMicros,
			InvocationMicros: invocationMicros(stepStart),
		})
	}
	return Reply{
		OK:               true,
		Output:           current,
		InferenceMicros:  totalInf,
		InvocationMicros: invocationMicros(start),
		Steps:            stats,
	}
}

// EncodePackage converts a servable package to wire form.
func EncodePackage(pkg *servable.Package) (*PackageWire, error) {
	doc, err := json.Marshal(pkg.Doc)
	if err != nil {
		return nil, err
	}
	return &PackageWire{Doc: doc, Components: pkg.Components}, nil
}

// DecodePackage reverses EncodePackage.
func DecodePackage(w *PackageWire) (*servable.Package, error) {
	pkg := &servable.Package{Components: w.Components}
	pkg.Doc = new(schema.Document)
	if err := json.Unmarshal(w.Doc, pkg.Doc); err != nil {
		return nil, fmt.Errorf("taskmanager: bad package doc: %w", err)
	}
	return pkg, nil
}
