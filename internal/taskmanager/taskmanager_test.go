package taskmanager

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/executor"
	"repro/internal/queue"
	"repro/internal/servable"
	"repro/internal/simconst"
)

func init() {
	simconst.Scale = 1000
}

// fakeExecutor counts invocations and returns canned outputs.
type fakeExecutor struct {
	mu       sync.Mutex
	deployed map[string]int
	invoked  int
	fail     bool
}

func newFakeExecutor() *fakeExecutor {
	return &fakeExecutor{deployed: make(map[string]int)}
}

func (f *fakeExecutor) Name() string { return "fake" }

func (f *fakeExecutor) Deploy(pkg *servable.Package, replicas int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.deployed[pkg.Doc.ID] = replicas
	return nil
}

func (f *fakeExecutor) Scale(id string, replicas int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.deployed[id]; !ok {
		return executor.ErrNotDeployed
	}
	f.deployed[id] = replicas
	return nil
}

func (f *fakeExecutor) Invoke(_ context.Context, id string, input any) (executor.Result, error) {
	f.mu.Lock()
	f.invoked++
	fail := f.fail
	_, deployed := f.deployed[id]
	f.mu.Unlock()
	if fail {
		return executor.Result{}, errors.New("executor exploded")
	}
	if !deployed {
		return executor.Result{}, executor.ErrNotDeployed
	}
	return executor.Result{Output: fmt.Sprintf("ran:%v", input), InferenceMicros: 5}, nil
}

func (f *fakeExecutor) Undeploy(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.deployed, id)
	return nil
}

func (f *fakeExecutor) Replicas(id string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.deployed[id]
}

func (f *fakeExecutor) Close() {}

func (f *fakeExecutor) invocations() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.invoked
}

func startTM(t *testing.T, memo bool) (*TM, *queue.Broker, *fakeExecutor) {
	t.Helper()
	broker := queue.NewBroker(time.Minute)
	fake := newFakeExecutor()
	tm, err := New(Config{
		ID:        "tm-test",
		Queue:     BrokerAdapter{B: broker},
		Executors: map[string]executor.Executor{"parsl": fake},
		Memoize:   memo,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tm.Close(); broker.Close() })
	return tm, broker, fake
}

func request(t *testing.T, broker *queue.Broker, task Task) Reply {
	t.Helper()
	body, err := json.Marshal(task)
	if err != nil {
		t.Fatal(err)
	}
	replyBody, ok := broker.Request(TaskQueue("tm-test"), body, 5*time.Second)
	if !ok {
		t.Fatal("request timed out")
	}
	var rep Reply
	if err := json.Unmarshal(replyBody, &rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

func deployNoop(t *testing.T, broker *queue.Broker) {
	t.Helper()
	pkg := servable.NoopPackage()
	pkg.Doc.ID = "dlhub/noop"
	wire, err := EncodePackage(pkg)
	if err != nil {
		t.Fatal(err)
	}
	rep := request(t, broker, Task{ID: "d1", Kind: "deploy", Replicas: 2, Package: wire})
	if !rep.OK {
		t.Fatalf("deploy failed: %s", rep.Error)
	}
}

func TestRegistrationOnStartup(t *testing.T) {
	broker := queue.NewBroker(time.Minute)
	defer broker.Close()
	fake := newFakeExecutor()
	tm, err := New(Config{ID: "tm-a", Queue: BrokerAdapter{B: broker}, Executors: map[string]executor.Executor{"parsl": fake}})
	if err != nil {
		t.Fatal(err)
	}
	defer tm.Close()
	msg, ok := broker.Pull(RegisterQueue, time.Second)
	if !ok {
		t.Fatal("registration message missing")
	}
	var reg Registration
	if err := json.Unmarshal(msg.Body, &reg); err != nil {
		t.Fatal(err)
	}
	if reg.TMID != "tm-a" || len(reg.Executors) != 1 || reg.Executors[0] != "parsl" {
		t.Fatalf("bad registration: %+v", reg)
	}
}

func TestConfigValidation(t *testing.T) {
	broker := queue.NewBroker(time.Minute)
	defer broker.Close()
	fake := newFakeExecutor()
	if _, err := New(Config{Queue: BrokerAdapter{B: broker}, Executors: map[string]executor.Executor{"parsl": fake}}); err == nil {
		t.Fatal("missing ID should fail")
	}
	if _, err := New(Config{ID: "x", Executors: map[string]executor.Executor{"parsl": fake}}); err == nil {
		t.Fatal("missing queue should fail")
	}
	if _, err := New(Config{ID: "x", Queue: BrokerAdapter{B: broker}}); err == nil {
		t.Fatal("missing executors should fail")
	}
}

func TestPing(t *testing.T) {
	_, broker, _ := startTM(t, false)
	rep := request(t, broker, Task{ID: "p1", Kind: "ping"})
	if !rep.OK || rep.Output != "pong" || rep.TaskID != "p1" {
		t.Fatalf("ping reply wrong: %+v", rep)
	}
}

func TestDeployAndRun(t *testing.T) {
	_, broker, fake := startTM(t, false)
	deployNoop(t, broker)
	if fake.Replicas("dlhub/noop") != 2 {
		t.Fatalf("deploy replicas wrong: %d", fake.Replicas("dlhub/noop"))
	}
	rep := request(t, broker, Task{ID: "r1", Kind: "run", Servable: "dlhub/noop", Input: "x"})
	if !rep.OK || rep.Output != "ran:x" {
		t.Fatalf("run reply wrong: %+v", rep)
	}
	if rep.InvocationMicros <= 0 {
		t.Fatal("invocation time missing")
	}
	if rep.InferenceMicros != 5 {
		t.Fatalf("inference time should pass through, got %d", rep.InferenceMicros)
	}
}

func TestRunUnknownServable(t *testing.T) {
	_, broker, _ := startTM(t, false)
	rep := request(t, broker, Task{ID: "r1", Kind: "run", Servable: "ghost", Input: 1})
	if rep.OK {
		t.Fatal("unknown servable should fail")
	}
}

func TestMemoization(t *testing.T) {
	tm, broker, fake := startTM(t, true)
	deployNoop(t, broker)
	r1 := request(t, broker, Task{ID: "a", Kind: "run", Servable: "dlhub/noop", Input: "same"})
	r2 := request(t, broker, Task{ID: "b", Kind: "run", Servable: "dlhub/noop", Input: "same"})
	if r1.Cached {
		t.Fatal("first request should miss")
	}
	if !r2.Cached {
		t.Fatal("second identical request should hit the TM cache")
	}
	if r2.Output != r1.Output {
		t.Fatal("cached output must match")
	}
	if got := fake.invocations(); got != 1 {
		t.Fatalf("executor should only see the miss, saw %d", got)
	}
	// Different input misses.
	r3 := request(t, broker, Task{ID: "c", Kind: "run", Servable: "dlhub/noop", Input: "other"})
	if r3.Cached {
		t.Fatal("different input should miss")
	}
	// NoMemo bypasses the cache.
	r4 := request(t, broker, Task{ID: "d", Kind: "run", Servable: "dlhub/noop", Input: "same", NoMemo: true})
	if r4.Cached {
		t.Fatal("NoMemo request must not be served from cache")
	}
	_, hits := tm.Stats()
	if hits != 1 {
		t.Fatalf("want 1 hit, got %d", hits)
	}
}

func TestSetMemoizeClearsCache(t *testing.T) {
	tm, broker, _ := startTM(t, true)
	deployNoop(t, broker)
	request(t, broker, Task{ID: "a", Kind: "run", Servable: "dlhub/noop", Input: "x"})
	tm.SetMemoize(false)
	tm.SetMemoize(true)
	rep := request(t, broker, Task{ID: "b", Kind: "run", Servable: "dlhub/noop", Input: "x"})
	if rep.Cached {
		t.Fatal("cache should have been cleared")
	}
}

func TestBatch(t *testing.T) {
	_, broker, fake := startTM(t, false)
	deployNoop(t, broker)
	inputs := []any{"a", "b", "c", "d"}
	rep := request(t, broker, Task{ID: "bt", Kind: "run_batch", Servable: "dlhub/noop", Inputs: inputs})
	if !rep.OK {
		t.Fatalf("batch failed: %s", rep.Error)
	}
	if len(rep.Outputs) != 4 {
		t.Fatalf("want 4 outputs, got %d", len(rep.Outputs))
	}
	for i, out := range rep.Outputs {
		want := fmt.Sprintf("ran:%v", inputs[i])
		if out != want {
			t.Fatalf("output %d = %v, want %s (order must be preserved)", i, out, want)
		}
	}
	if fake.invocations() != 4 {
		t.Fatalf("executor should see 4 invocations, saw %d", fake.invocations())
	}
}

func TestBatchPartialFailure(t *testing.T) {
	_, broker, fake := startTM(t, false)
	deployNoop(t, broker)
	fake.fail = true
	rep := request(t, broker, Task{ID: "bt", Kind: "run_batch", Servable: "dlhub/noop", Inputs: []any{"a", "b"}})
	if rep.OK {
		t.Fatal("batch with failures should report failure")
	}
	if !strings.Contains(rep.Error, "exploded") {
		t.Fatalf("error should propagate: %s", rep.Error)
	}
}

func TestPipelineChainsOutputs(t *testing.T) {
	_, broker, _ := startTM(t, false)
	// Deploy two steps.
	for _, name := range []string{"s1", "s2"} {
		pkg := servable.NoopPackage()
		pkg.Doc.ID = "dlhub/" + name
		pkg.Doc.Publication.Name = name
		wire, _ := EncodePackage(pkg)
		rep := request(t, broker, Task{ID: "d-" + name, Kind: "deploy", Replicas: 1, Package: wire})
		if !rep.OK {
			t.Fatalf("deploy %s failed: %s", name, rep.Error)
		}
	}
	rep := request(t, broker, Task{ID: "pl", Kind: "pipeline", Input: "in", Steps: []string{"dlhub/s1", "dlhub/s2"}})
	if !rep.OK {
		t.Fatalf("pipeline failed: %s", rep.Error)
	}
	// fake executor: s1 output "ran:in" feeds s2 -> "ran:ran:in".
	if rep.Output != "ran:ran:in" {
		t.Fatalf("pipeline should chain outputs, got %v", rep.Output)
	}
}

func TestPipelineTooShort(t *testing.T) {
	_, broker, _ := startTM(t, false)
	rep := request(t, broker, Task{ID: "pl", Kind: "pipeline", Steps: []string{"one"}})
	if rep.OK {
		t.Fatal("single-step pipeline should fail")
	}
}

func TestScaleAndUndeployTasks(t *testing.T) {
	_, broker, fake := startTM(t, false)
	deployNoop(t, broker)
	rep := request(t, broker, Task{ID: "s", Kind: "scale", Servable: "dlhub/noop", Replicas: 7})
	if !rep.OK {
		t.Fatalf("scale failed: %s", rep.Error)
	}
	if fake.Replicas("dlhub/noop") != 7 {
		t.Fatalf("scale not applied: %d", fake.Replicas("dlhub/noop"))
	}
	rep = request(t, broker, Task{ID: "u", Kind: "undeploy", Servable: "dlhub/noop"})
	if !rep.OK {
		t.Fatalf("undeploy failed: %s", rep.Error)
	}
	rep = request(t, broker, Task{ID: "r", Kind: "run", Servable: "dlhub/noop", Input: 1})
	if rep.OK {
		t.Fatal("run after undeploy should fail")
	}
}

func TestUnknownKind(t *testing.T) {
	_, broker, _ := startTM(t, false)
	rep := request(t, broker, Task{ID: "x", Kind: "dance"})
	if rep.OK || !strings.Contains(rep.Error, "unknown task kind") {
		t.Fatalf("unknown kind should fail: %+v", rep)
	}
}

func TestBadTaskJSON(t *testing.T) {
	_, broker, _ := startTM(t, false)
	replyBody, ok := broker.Request(TaskQueue("tm-test"), []byte("{not json"), 5*time.Second)
	if !ok {
		t.Fatal("should still reply to malformed tasks")
	}
	var rep Reply
	json.Unmarshal(replyBody, &rep) //nolint:errcheck
	if rep.OK {
		t.Fatal("malformed task should fail")
	}
}

func TestUnknownExecutorRoute(t *testing.T) {
	_, broker, _ := startTM(t, false)
	deployNoop(t, broker)
	rep := request(t, broker, Task{ID: "x", Kind: "run", Servable: "dlhub/noop", Executor: "tfserving-grpc"})
	if rep.OK || !strings.Contains(rep.Error, "not available") {
		t.Fatalf("unknown route should fail: %+v", rep)
	}
}

func TestConcurrentTasks(t *testing.T) {
	_, broker, _ := startTM(t, false)
	deployNoop(t, broker)
	var wg sync.WaitGroup
	errs := make([]error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(Task{ID: fmt.Sprintf("c%d", i), Kind: "run", Servable: "dlhub/noop", Input: i})
			replyBody, ok := broker.Request(TaskQueue("tm-test"), body, 5*time.Second)
			if !ok {
				errs[i] = errors.New("timeout")
				return
			}
			var rep Reply
			if err := json.Unmarshal(replyBody, &rep); err != nil || !rep.OK {
				errs[i] = fmt.Errorf("bad reply: %+v %v", rep, err)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestPackageRoundTrip(t *testing.T) {
	pkg, err := servable.CIFAR10Package(1)
	if err != nil {
		t.Fatal(err)
	}
	pkg.Doc.ID = "u/cifar10"
	wire, err := EncodePackage(pkg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodePackage(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.Doc.ID != "u/cifar10" || len(back.Components["model"]) != len(pkg.Components["model"]) {
		t.Fatal("package round trip lost data")
	}
	if _, err := DecodePackage(&PackageWire{Doc: []byte("zzz")}); err == nil {
		t.Fatal("bad doc should fail")
	}
}
