// Package tfserving reproduces TensorFlow Serving as used in §V-B5: the
// C++ tensorflow_model_server serving trained models over both gRPC and
// REST APIs. The server process hosts the servable *natively* (no
// simulated-Python costs — this is the compiled runtime whose speed
// advantage Fig. 8 shows), exposes a binary framed "gRPC" endpoint
// carrying raw float32 tensors, and a REST endpoint carrying JSON — so
// the gRPC-vs-REST gap comes from genuine encoding and parsing work.
package tfserving

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/container"
	"repro/internal/executor"
	"repro/internal/k8s"
	"repro/internal/netsim"
	"repro/internal/rpc"
	"repro/internal/schema"
	"repro/internal/servable"
)

// Entrypoint is the container entrypoint key for the model server.
const Entrypoint = "tensorflow-model-server"

// API selects the serving protocol, the §V-B5 comparison axis.
type API string

// The two TensorFlow Serving APIs.
const (
	GRPC API = "grpc"
	REST API = "rest"
)

// Server is the in-container tensorflow_model_server process.
type Server struct {
	mu       sync.Mutex
	sv       *servable.Servable
	rpcSrv   *rpc.Server
	httpSrv  *http.Server
	grpcAddr string
	restAddr string
	name     string
}

// NewProcessFactory returns the container process factory for the model
// server.
func NewProcessFactory() container.ProcessFactory {
	return func() container.Process { return &Server{} }
}

// Start implements container.Process.
func (s *Server) Start(fs map[string][]byte, env map[string]string) error {
	docData, ok := fs["/dlhub/doc.json"]
	if !ok {
		return fmt.Errorf("tfserving: image missing /dlhub/doc.json")
	}
	var doc schema.Document
	if err := json.Unmarshal(docData, &doc); err != nil {
		return err
	}
	if doc.Servable.Type != schema.TypeTensorFlow && doc.Servable.Type != schema.TypeKeras {
		return fmt.Errorf("tfserving: cannot export %s as a TensorFlow servable", doc.Servable.Type)
	}
	components := map[string][]byte{}
	const prefix = "/dlhub/components/"
	for path, data := range fs {
		if strings.HasPrefix(path, prefix) {
			components[path[len(prefix):]] = data
		}
	}
	sv, err := servable.Load(&doc, components, false /* native C++ host */)
	if err != nil {
		return err
	}

	// gRPC listener.
	gl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		sv.Close()
		return err
	}
	rpcSrv := rpc.NewServer()
	rpcSrv.Handle("tensorflow.serving.predict", func(_ context.Context, payload []byte) ([]byte, error) {
		input, err := rpc.DecodeFloats(payload)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		out, err := sv.RunNative(input)
		if err != nil {
			return nil, err
		}
		return json.Marshal(executor.Result{Output: out, InferenceMicros: time.Since(start).Microseconds()})
	})
	go rpcSrv.Serve(gl) //nolint:errcheck

	// REST listener.
	rl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rpcSrv.Close()
		sv.Close()
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/models/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || !strings.HasSuffix(r.URL.Path, ":predict") {
			rpc.WriteError(w, http.StatusNotFound, "unknown endpoint %s", r.URL.Path)
			return
		}
		var req struct {
			Instances [][]float64 `json:"instances"`
		}
		if err := rpc.ReadJSON(r, &req); err != nil {
			rpc.WriteError(w, http.StatusBadRequest, "bad body: %v", err)
			return
		}
		if len(req.Instances) != 1 {
			rpc.WriteError(w, http.StatusBadRequest, "exactly one instance per request, got %d", len(req.Instances))
			return
		}
		start := time.Now()
		out, err := sv.RunNative(req.Instances[0])
		if err != nil {
			rpc.WriteError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		rpc.WriteJSON(w, http.StatusOK, map[string]any{
			"predictions":  []any{out},
			"inference_us": time.Since(start).Microseconds(),
		})
	})
	httpSrv := &http.Server{Handler: mux}
	go httpSrv.Serve(rl) //nolint:errcheck

	s.mu.Lock()
	s.sv = sv
	s.rpcSrv = rpcSrv
	s.httpSrv = httpSrv
	s.grpcAddr = gl.Addr().String()
	s.restAddr = rl.Addr().String()
	s.name = doc.Publication.Name
	s.mu.Unlock()
	return nil
}

// Stop implements container.Process.
func (s *Server) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rpcSrv != nil {
		s.rpcSrv.Close()
	}
	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	if s.sv != nil {
		s.sv.Close()
	}
}

// Addr returns the gRPC address (the default executor.PodAddr view).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.grpcAddr
}

// RESTAddr returns the REST address.
func (s *Server) RESTAddr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restAddr
}

// ModelName returns the served model name.
func (s *Server) ModelName() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.name
}

// --- executor ----------------------------------------------------------------

// Executor deploys TensorFlow Serving containers on Kubernetes and
// routes invocations over the chosen API (§IV-C "TensorFlow Serving
// executor").
type Executor struct {
	cluster *k8s.Cluster
	builder *container.Builder
	link    netsim.Profile
	api     API

	mu   sync.Mutex
	deps map[string]*deployment
}

type deployment struct {
	id      string
	depName string

	epMu  sync.Mutex
	grpc  []*rpc.Client
	rest  []restEndpoint
	rr    int
	model string
}

type restEndpoint struct {
	url    string
	client *http.Client
}

// New creates a TF-Serving executor using the given API variant.
func New(cluster *k8s.Cluster, builder *container.Builder, link netsim.Profile, api API) *Executor {
	return &Executor{
		cluster: cluster,
		builder: builder,
		link:    link,
		api:     api,
		deps:    make(map[string]*deployment),
	}
}

// Name implements executor.Executor.
func (e *Executor) Name() string { return "tfserving-" + string(e.api) }

// Deploy implements executor.Executor.
func (e *Executor) Deploy(pkg *servable.Package, replicas int) error {
	img, err := executor.BuildServableImage(e.builder, pkg, Entrypoint)
	if err != nil {
		return err
	}
	depName := "tfs-" + pkg.Doc.Publication.Name
	if _, err := e.cluster.CreateDeployment(depName, k8s.PodSpec{
		Image:    img.Ref(),
		Requests: k8s.Resources{MilliCPU: 2000, MemMB: 4096},
	}, replicas); err != nil {
		return err
	}
	d := &deployment{id: pkg.Doc.ID, depName: depName, model: pkg.Doc.Publication.Name}
	if err := e.connect(d); err != nil {
		return err
	}
	e.mu.Lock()
	e.deps[pkg.Doc.ID] = d
	e.mu.Unlock()
	return nil
}

func (e *Executor) connect(d *deployment) error {
	pods := e.cluster.PodsMatching(map[string]string{"deployment": d.depName})
	d.epMu.Lock()
	defer d.epMu.Unlock()
	for _, c := range d.grpc {
		c.Close()
	}
	d.grpc = nil
	d.rest = nil
	for _, pod := range pods {
		ctr := pod.Container()
		if ctr == nil {
			continue
		}
		srv, ok := ctr.Proc.(*Server)
		if !ok {
			return fmt.Errorf("tfserving: pod %s is not a model server", pod.Name)
		}
		switch e.api {
		case GRPC:
			conn, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				return err
			}
			d.grpc = append(d.grpc, rpc.NewClient(netsim.Wrap(conn, e.link)))
		case REST:
			link := e.link
			d.rest = append(d.rest, restEndpoint{
				url: "http://" + srv.RESTAddr() + "/v1/models/" + d.model + ":predict",
				client: &http.Client{Transport: &http.Transport{
					DialContext: func(_ context.Context, network, addr string) (net.Conn, error) {
						conn, err := net.Dial(network, addr)
						if err != nil {
							return nil, err
						}
						return netsim.Wrap(conn, link), nil
					},
				}},
			})
		}
	}
	return nil
}

// Scale implements executor.Executor.
func (e *Executor) Scale(servableID string, replicas int) error {
	e.mu.Lock()
	d, ok := e.deps[servableID]
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", executor.ErrNotDeployed, servableID)
	}
	if err := e.cluster.Scale(d.depName, replicas); err != nil {
		return err
	}
	return e.connect(d)
}

// Replicas implements executor.Executor.
func (e *Executor) Replicas(servableID string) int {
	e.mu.Lock()
	d, ok := e.deps[servableID]
	e.mu.Unlock()
	if !ok {
		return 0
	}
	d.epMu.Lock()
	defer d.epMu.Unlock()
	if e.api == GRPC {
		return len(d.grpc)
	}
	return len(d.rest)
}

// Invoke implements executor.Executor.
func (e *Executor) Invoke(ctx context.Context, servableID string, input any) (executor.Result, error) {
	e.mu.Lock()
	d, ok := e.deps[servableID]
	e.mu.Unlock()
	if !ok {
		return executor.Result{}, fmt.Errorf("%w: %s", executor.ErrNotDeployed, servableID)
	}
	switch e.api {
	case GRPC:
		return e.invokeGRPC(ctx, d, input)
	default:
		return e.invokeREST(d, input)
	}
}

func (e *Executor) invokeGRPC(ctx context.Context, d *deployment, input any) (executor.Result, error) {
	vec, err := servable.ToFloat32Slice(input)
	if err != nil {
		return executor.Result{}, err
	}
	d.epMu.Lock()
	if len(d.grpc) == 0 {
		d.epMu.Unlock()
		return executor.Result{}, fmt.Errorf("%w: no gRPC endpoints", executor.ErrNotDeployed)
	}
	client := d.grpc[d.rr%len(d.grpc)]
	d.rr++
	d.epMu.Unlock()

	data, err := client.Call(ctx, "tensorflow.serving.predict", rpc.EncodeFloats(vec))
	if err != nil {
		return executor.Result{}, err
	}
	var res executor.Result
	if err := json.Unmarshal(data, &res); err != nil {
		return executor.Result{}, err
	}
	return res, nil
}

func (e *Executor) invokeREST(d *deployment, input any) (executor.Result, error) {
	vec, err := servable.ToFloat64Slice(input)
	if err != nil {
		return executor.Result{}, err
	}
	d.epMu.Lock()
	if len(d.rest) == 0 {
		d.epMu.Unlock()
		return executor.Result{}, fmt.Errorf("%w: no REST endpoints", executor.ErrNotDeployed)
	}
	ep := d.rest[d.rr%len(d.rest)]
	d.rr++
	d.epMu.Unlock()

	var resp struct {
		Predictions []any `json:"predictions"`
		InferenceUS int64 `json:"inference_us"`
	}
	if err := rpc.PostJSON(ep.client, ep.url, map[string]any{"instances": [][]float64{vec}}, &resp); err != nil {
		return executor.Result{}, err
	}
	if len(resp.Predictions) != 1 {
		return executor.Result{}, errors.New("tfserving: malformed REST response")
	}
	return executor.Result{Output: resp.Predictions[0], InferenceMicros: resp.InferenceUS}, nil
}

// Undeploy implements executor.Executor.
func (e *Executor) Undeploy(servableID string) error {
	e.mu.Lock()
	d, ok := e.deps[servableID]
	if ok {
		delete(e.deps, servableID)
	}
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", executor.ErrNotDeployed, servableID)
	}
	d.epMu.Lock()
	for _, c := range d.grpc {
		c.Close()
	}
	d.grpc = nil
	d.rest = nil
	d.epMu.Unlock()
	return e.cluster.DeleteDeployment(d.depName)
}

// Close implements executor.Executor.
func (e *Executor) Close() {
	e.mu.Lock()
	ids := make([]string, 0, len(e.deps))
	for id := range e.deps {
		ids = append(ids, id)
	}
	e.mu.Unlock()
	for _, id := range ids {
		e.Undeploy(id) //nolint:errcheck
	}
}
