package tfserving

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/container"
	"repro/internal/executor"
	"repro/internal/k8s"
	"repro/internal/netsim"
	"repro/internal/servable"
	"repro/internal/simconst"
)

func init() {
	simconst.Scale = 1000
}

func testbed(t *testing.T) (*k8s.Cluster, *container.Builder) {
	t.Helper()
	reg := container.NewRegistry()
	builder := container.NewBuilder(reg)
	rt := container.NewRuntime(reg)
	rt.RegisterProcess(Entrypoint, NewProcessFactory())
	cluster := k8s.NewCluster(rt, 4, k8s.Resources{MilliCPU: 32000, MemMB: 128 * 1024})
	return cluster, builder
}

func cifarInput() []float32 {
	in := make([]float32, 32*32*3)
	for i := range in {
		in[i] = float32(i%11) / 11
	}
	return in
}

func newExec(t *testing.T, api API) *Executor {
	t.Helper()
	cluster, builder := testbed(t)
	e := New(cluster, builder, netsim.RTT(170*time.Microsecond, 0), api)
	t.Cleanup(e.Close)
	pkg, err := servable.CIFAR10Package(1)
	if err != nil {
		t.Fatal(err)
	}
	pkg.Doc.ID = "dlhub/cifar10"
	if err := e.Deploy(pkg, 2); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestGRPCInvoke(t *testing.T) {
	e := newExec(t, GRPC)
	res, err := e.Invoke(context.Background(), "dlhub/cifar10", cifarInput())
	if err != nil {
		t.Fatal(err)
	}
	preds, ok := res.Output.([]any)
	if !ok || len(preds) != 5 {
		t.Fatalf("want top-5 predictions, got %v", res.Output)
	}
	if res.InferenceMicros <= 0 {
		t.Fatal("inference time should be positive")
	}
	if e.Replicas("dlhub/cifar10") != 2 {
		t.Fatalf("want 2 replicas, got %d", e.Replicas("dlhub/cifar10"))
	}
}

func TestRESTInvoke(t *testing.T) {
	e := newExec(t, REST)
	res, err := e.Invoke(context.Background(), "dlhub/cifar10", cifarInput())
	if err != nil {
		t.Fatal(err)
	}
	preds, ok := res.Output.([]any)
	if !ok || len(preds) != 5 {
		t.Fatalf("want top-5 predictions, got %v", res.Output)
	}
}

func TestGRPCAndRESTAgree(t *testing.T) {
	g := newExec(t, GRPC)
	r := newExec(t, REST)
	in := cifarInput()
	resG, err := g.Invoke(context.Background(), "dlhub/cifar10", in)
	if err != nil {
		t.Fatal(err)
	}
	resR, err := r.Invoke(context.Background(), "dlhub/cifar10", in)
	if err != nil {
		t.Fatal(err)
	}
	lg := resG.Output.([]any)[0].(map[string]any)["label"]
	lr := resR.Output.([]any)[0].(map[string]any)["label"]
	if lg != lr {
		t.Fatalf("APIs must serve the same model: %v vs %v", lg, lr)
	}
}

func TestInvokeNotDeployed(t *testing.T) {
	cluster, builder := testbed(t)
	e := New(cluster, builder, netsim.Profile{}, GRPC)
	defer e.Close()
	if _, err := e.Invoke(context.Background(), "ghost", cifarInput()); !errors.Is(err, executor.ErrNotDeployed) {
		t.Fatalf("want not deployed, got %v", err)
	}
}

func TestCannotServeNonTFModels(t *testing.T) {
	cluster, builder := testbed(t)
	e := New(cluster, builder, netsim.Profile{}, GRPC)
	defer e.Close()
	pkg := servable.MatminerUtilPackage() // python_function
	pkg.Doc.ID = "dlhub/util"
	if err := e.Deploy(pkg, 1); err == nil {
		t.Fatal("python functions cannot be exported as TF servables")
	}
}

func TestScale(t *testing.T) {
	e := newExec(t, GRPC)
	if err := e.Scale("dlhub/cifar10", 5); err != nil {
		t.Fatal(err)
	}
	if e.Replicas("dlhub/cifar10") != 5 {
		t.Fatalf("want 5, got %d", e.Replicas("dlhub/cifar10"))
	}
	if err := e.Scale("ghost", 2); !errors.Is(err, executor.ErrNotDeployed) {
		t.Fatalf("want not deployed, got %v", err)
	}
}

func TestUndeploy(t *testing.T) {
	e := newExec(t, GRPC)
	if err := e.Undeploy("dlhub/cifar10"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Invoke(context.Background(), "dlhub/cifar10", cifarInput()); !errors.Is(err, executor.ErrNotDeployed) {
		t.Fatalf("want not deployed after undeploy, got %v", err)
	}
}

func TestGRPCFasterThanREST(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	g := newExec(t, GRPC)
	r := newExec(t, REST)
	in := cifarInput()
	ctx := context.Background()
	// Warm up.
	g.Invoke(ctx, "dlhub/cifar10", in) //nolint:errcheck
	r.Invoke(ctx, "dlhub/cifar10", in) //nolint:errcheck

	const n = 20
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := g.Invoke(ctx, "dlhub/cifar10", in); err != nil {
			t.Fatal(err)
		}
	}
	grpcTime := time.Since(start)
	start = time.Now()
	for i := 0; i < n; i++ {
		if _, err := r.Invoke(ctx, "dlhub/cifar10", in); err != nil {
			t.Fatal(err)
		}
	}
	restTime := time.Since(start)
	// The paper: "gRPC leads to slightly better performance than REST
	// due to the overhead of the HTTP protocol."
	if grpcTime >= restTime {
		t.Logf("warning: grpc=%v rest=%v (expected grpc < rest; timing noise possible)", grpcTime, restTime)
	}
}
