// Package transfer reproduces the Globus Transfer slice DLHub depends
// on (§IV-A): "As model components can be large, model components can
// be uploaded to an AWS S3 bucket or a Globus endpoint. Once a model is
// published, the Management Service downloads the components and builds
// the servable" — and §IV-D: dependent tokens let the service "transfer
// model components and inputs from Globus endpoints seamlessly" on the
// user's behalf.
//
// Endpoints are named stores with per-endpoint bandwidth; transfers are
// asynchronous tasks with progress, integrity checking (sha256) and
// token-authorized access, mirroring the Globus Transfer task model.
package transfer

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/auth"
	"repro/internal/queue"
	"repro/internal/simconst"
)

// Errors.
var (
	ErrEndpointNotFound = errors.New("transfer: endpoint not found")
	ErrFileNotFound     = errors.New("transfer: file not found")
	ErrTaskNotFound     = errors.New("transfer: task not found")
	ErrDenied           = errors.New("transfer: access denied")
	ErrChecksum         = errors.New("transfer: checksum mismatch")
)

// Endpoint is a Globus endpoint: a named file store with an egress
// bandwidth and an access list.
type Endpoint struct {
	Name string
	// BytesPerSec bounds transfer throughput out of this endpoint
	// (0 = unlimited).
	BytesPerSec float64
	// ReadableBy lists ACL principals; empty means public.
	ReadableBy []string

	mu    sync.RWMutex
	files map[string][]byte
}

// Put stores a file on the endpoint.
func (e *Endpoint) Put(path string, data []byte) {
	e.mu.Lock()
	if e.files == nil {
		e.files = make(map[string][]byte)
	}
	e.files[path] = append([]byte(nil), data...)
	e.mu.Unlock()
}

// Stat returns a file's size and sha256.
func (e *Endpoint) Stat(path string) (int64, string, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	data, ok := e.files[path]
	if !ok {
		return 0, "", fmt.Errorf("%w: %s:%s", ErrFileNotFound, e.Name, path)
	}
	sum := sha256.Sum256(data)
	return int64(len(data)), hex.EncodeToString(sum[:]), nil
}

func (e *Endpoint) readable(principals []string) bool {
	if len(e.ReadableBy) == 0 {
		return true
	}
	for _, r := range e.ReadableBy {
		if r == auth.PublicPrincipal {
			return true
		}
		for _, p := range principals {
			if r == p {
				return true
			}
		}
	}
	return false
}

// Status is a transfer task's lifecycle state.
type Status string

// Transfer task states, mirroring Globus Transfer.
const (
	StatusActive    Status = "ACTIVE"
	StatusSucceeded Status = "SUCCEEDED"
	StatusFailed    Status = "FAILED"
)

// Task is one asynchronous transfer.
type Task struct {
	ID          string
	Source      string // endpoint:path
	Destination string // endpoint:path
	Bytes       int64

	mu          sync.RWMutex
	status      Status
	transferred int64
	err         error
	done        chan struct{}
}

// Status returns the current state.
func (t *Task) Status() Status {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.status
}

// Progress returns bytes transferred so far.
func (t *Task) Progress() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.transferred
}

// Err returns the failure cause for failed tasks.
func (t *Task) Err() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.err
}

// Wait blocks until the task reaches a terminal state.
func (t *Task) Wait(timeout time.Duration) error {
	select {
	case <-t.done:
	case <-time.After(timeout):
		return fmt.Errorf("transfer: task %s still %s after %v", t.ID, t.Status(), timeout)
	}
	if t.Status() == StatusFailed {
		return t.Err()
	}
	return nil
}

// Service is the transfer authority: it owns endpoints and runs tasks.
// Auth may be nil (open access, as in benches).
type Service struct {
	Auth *auth.Service

	mu        sync.RWMutex
	endpoints map[string]*Endpoint
	tasks     map[string]*Task
}

// NewService creates an empty transfer service.
func NewService(a *auth.Service) *Service {
	return &Service{Auth: a, endpoints: make(map[string]*Endpoint), tasks: make(map[string]*Task)}
}

// AddEndpoint registers an endpoint.
func (s *Service) AddEndpoint(e *Endpoint) {
	s.mu.Lock()
	s.endpoints[e.Name] = e
	s.mu.Unlock()
}

// Endpoint fetches a registered endpoint.
func (s *Service) Endpoint(name string) (*Endpoint, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.endpoints[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrEndpointNotFound, name)
	}
	return e, nil
}

// principals resolves a bearer token into ACL principals. With no auth
// service configured, every caller is public.
func (s *Service) principals(token string) ([]string, error) {
	if s.Auth == nil || token == "" {
		return []string{auth.PublicPrincipal}, nil
	}
	tok, err := s.Auth.Introspect(token)
	if err != nil {
		return nil, err
	}
	return s.Auth.Principals(tok.IdentityID), nil
}

// Fetch synchronously reads a file from an endpoint, paying the
// endpoint's bandwidth cost — the "download the components" step of
// publication. token may be a dependent token minted for the service.
func (s *Service) Fetch(token, endpointName, path string) ([]byte, error) {
	prins, err := s.principals(token)
	if err != nil {
		return nil, err
	}
	ep, err := s.Endpoint(endpointName)
	if err != nil {
		return nil, err
	}
	if !ep.readable(prins) {
		return nil, fmt.Errorf("%w: endpoint %s", ErrDenied, endpointName)
	}
	ep.mu.RLock()
	data, ok := ep.files[path]
	ep.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s:%s", ErrFileNotFound, endpointName, path)
	}
	if ep.BytesPerSec > 0 {
		cost := time.Duration(float64(len(data)) / ep.BytesPerSec * float64(time.Second))
		time.Sleep(simconst.D(cost))
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// Submit starts an asynchronous endpoint-to-endpoint transfer and
// returns its task.
func (s *Service) Submit(token, srcEndpoint, srcPath, dstEndpoint, dstPath string) (*Task, error) {
	prins, err := s.principals(token)
	if err != nil {
		return nil, err
	}
	src, err := s.Endpoint(srcEndpoint)
	if err != nil {
		return nil, err
	}
	if !src.readable(prins) {
		return nil, fmt.Errorf("%w: endpoint %s", ErrDenied, srcEndpoint)
	}
	dst, err := s.Endpoint(dstEndpoint)
	if err != nil {
		return nil, err
	}
	size, wantSum, err := src.Stat(srcPath)
	if err != nil {
		return nil, err
	}

	task := &Task{
		ID:          queue.NewID(),
		Source:      srcEndpoint + ":" + srcPath,
		Destination: dstEndpoint + ":" + dstPath,
		Bytes:       size,
		status:      StatusActive,
		done:        make(chan struct{}),
	}
	s.mu.Lock()
	s.tasks[task.ID] = task
	s.mu.Unlock()

	go s.run(task, src, srcPath, dst, dstPath, wantSum)
	return task, nil
}

// run executes the transfer in chunks, updating progress.
func (s *Service) run(task *Task, src *Endpoint, srcPath string, dst *Endpoint, dstPath, wantSum string) {
	defer close(task.done)
	src.mu.RLock()
	data, ok := src.files[srcPath]
	src.mu.RUnlock()
	if !ok {
		task.fail(fmt.Errorf("%w: %s", ErrFileNotFound, task.Source))
		return
	}
	// Effective bandwidth is the slower of the two endpoints.
	bw := src.BytesPerSec
	if dst.BytesPerSec > 0 && (bw == 0 || dst.BytesPerSec < bw) {
		bw = dst.BytesPerSec
	}
	const chunk = 1 << 20
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		if bw > 0 {
			cost := time.Duration(float64(end-off) / bw * float64(time.Second))
			time.Sleep(simconst.D(cost))
		}
		task.mu.Lock()
		task.transferred = int64(end)
		task.mu.Unlock()
	}
	// Integrity check, then commit.
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != wantSum {
		task.fail(ErrChecksum)
		return
	}
	dst.Put(dstPath, data)
	task.mu.Lock()
	task.status = StatusSucceeded
	task.mu.Unlock()
}

func (t *Task) fail(err error) {
	t.mu.Lock()
	t.status = StatusFailed
	t.err = err
	t.mu.Unlock()
}

// GetTask fetches a submitted task by ID.
func (s *Service) GetTask(id string) (*Task, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tasks[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrTaskNotFound, id)
	}
	return t, nil
}

// Reference names a file on an endpoint ("globus://endpoint/path"),
// the form model components take in publication requests.
type Reference struct {
	Endpoint string `json:"endpoint"`
	Path     string `json:"path"`
}

// String renders the canonical URI.
func (r Reference) String() string { return "globus://" + r.Endpoint + "/" + r.Path }

// ParseReference parses "globus://endpoint/path".
func ParseReference(uri string) (Reference, error) {
	const prefix = "globus://"
	if len(uri) <= len(prefix) || uri[:len(prefix)] != prefix {
		return Reference{}, fmt.Errorf("transfer: not a globus URI: %q", uri)
	}
	rest := uri[len(prefix):]
	for i := 0; i < len(rest); i++ {
		if rest[i] == '/' {
			if i == 0 || i == len(rest)-1 {
				break
			}
			return Reference{Endpoint: rest[:i], Path: rest[i+1:]}, nil
		}
	}
	return Reference{}, fmt.Errorf("transfer: malformed globus URI: %q", uri)
}
