package transfer

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/auth"
	"repro/internal/simconst"
)

func init() {
	simconst.Scale = 1000
}

func openService() *Service {
	s := NewService(nil)
	s.AddEndpoint(&Endpoint{Name: "petrel"})
	s.AddEndpoint(&Endpoint{Name: "laptop"})
	return s
}

func TestPutStatFetch(t *testing.T) {
	s := openService()
	ep, _ := s.Endpoint("petrel")
	ep.Put("/models/w.bin", []byte("weights"))

	size, sum, err := ep.Stat("/models/w.bin")
	if err != nil {
		t.Fatal(err)
	}
	if size != 7 || len(sum) != 64 {
		t.Fatalf("stat wrong: %d %s", size, sum)
	}
	data, err := s.Fetch("", "petrel", "/models/w.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte("weights")) {
		t.Fatalf("fetch wrong: %q", data)
	}
	// Mutating the fetched copy must not corrupt the endpoint.
	data[0] = 'X'
	again, _ := s.Fetch("", "petrel", "/models/w.bin")
	if again[0] == 'X' {
		t.Fatal("Fetch must return a copy")
	}
}

func TestFetchErrors(t *testing.T) {
	s := openService()
	if _, err := s.Fetch("", "ghost", "/x"); !errors.Is(err, ErrEndpointNotFound) {
		t.Fatalf("want endpoint not found, got %v", err)
	}
	if _, err := s.Fetch("", "petrel", "/missing"); !errors.Is(err, ErrFileNotFound) {
		t.Fatalf("want file not found, got %v", err)
	}
}

func TestAsyncTransfer(t *testing.T) {
	s := openService()
	ep, _ := s.Endpoint("petrel")
	payload := bytes.Repeat([]byte{7}, 3<<20) // 3 MiB, multiple chunks
	ep.Put("/big.bin", payload)

	task, err := s.Submit("", "petrel", "/big.bin", "laptop", "/local.bin")
	if err != nil {
		t.Fatal(err)
	}
	if err := task.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if task.Status() != StatusSucceeded {
		t.Fatalf("want SUCCEEDED, got %s", task.Status())
	}
	if task.Progress() != int64(len(payload)) {
		t.Fatalf("progress should reach total: %d", task.Progress())
	}
	dst, _ := s.Endpoint("laptop")
	got, err := s.Fetch("", "laptop", "/local.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("transferred bytes corrupted")
	}
	_ = dst

	// Task lookup.
	if _, err := s.GetTask(task.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetTask("nope"); !errors.Is(err, ErrTaskNotFound) {
		t.Fatalf("want task not found, got %v", err)
	}
}

func TestSubmitErrors(t *testing.T) {
	s := openService()
	if _, err := s.Submit("", "ghost", "/x", "laptop", "/y"); !errors.Is(err, ErrEndpointNotFound) {
		t.Fatalf("want endpoint not found, got %v", err)
	}
	if _, err := s.Submit("", "petrel", "/missing", "laptop", "/y"); !errors.Is(err, ErrFileNotFound) {
		t.Fatalf("want file not found, got %v", err)
	}
	if _, err := s.Submit("", "petrel", "/x", "ghost", "/y"); !errors.Is(err, ErrEndpointNotFound) {
		t.Fatalf("want dest endpoint not found, got %v", err)
	}
}

func TestBandwidthEnforced(t *testing.T) {
	simconst.Scale = 1 // measure real sleeps here
	defer func() { simconst.Scale = 1000 }()
	s := NewService(nil)
	// 1 MB/s: 200 KB ~ 200ms.
	s.AddEndpoint(&Endpoint{Name: "slow", BytesPerSec: 1e6})
	ep, _ := s.Endpoint("slow")
	ep.Put("/f", make([]byte, 200_000))
	start := time.Now()
	if _, err := s.Fetch("", "slow", "/f"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("bandwidth not charged: %v", elapsed)
	}
}

func TestACLWithAuth(t *testing.T) {
	a := auth.NewService(time.Hour)
	a.RegisterProvider("orcid")
	a.RegisterClient("transfer", "Transfer", "transfer:all")
	u, _ := a.RegisterUser("orcid", "u", "pw", "U", "")
	a.RegisterUser("orcid", "v", "pw", "V", "") //nolint:errcheck

	s := NewService(a)
	s.AddEndpoint(&Endpoint{Name: "private", ReadableBy: []string{u.ID}})
	ep, _ := s.Endpoint("private")
	ep.Put("/secret", []byte("s"))

	utok, _ := a.Authenticate("orcid", "u", "pw", "transfer", "transfer:all")
	vtok, _ := a.Authenticate("orcid", "v", "pw", "transfer", "transfer:all")

	if _, err := s.Fetch(utok.Value, "private", "/secret"); err != nil {
		t.Fatalf("owner should read: %v", err)
	}
	if _, err := s.Fetch(vtok.Value, "private", "/secret"); !errors.Is(err, ErrDenied) {
		t.Fatalf("other user should be denied, got %v", err)
	}
	if _, err := s.Fetch("bogus-token", "private", "/secret"); err == nil {
		t.Fatal("bad token should fail")
	}
	// Dependent token (the DLHub pattern, §IV-D): a service acting for u.
	dep, err := a.DependentToken(utok.Value, "transfer", "transfer:all")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fetch(dep.Value, "private", "/secret"); err != nil {
		t.Fatalf("dependent token should read on u's behalf: %v", err)
	}
}

func TestReferenceParse(t *testing.T) {
	r, err := ParseReference("globus://petrel/models/weights.bin")
	if err != nil {
		t.Fatal(err)
	}
	if r.Endpoint != "petrel" || r.Path != "models/weights.bin" {
		t.Fatalf("parse wrong: %+v", r)
	}
	if r.String() != "globus://petrel/models/weights.bin" {
		t.Fatalf("string wrong: %s", r)
	}
	for _, bad := range []string{"", "http://x/y", "globus://", "globus://onlyendpoint", "globus:///path", "globus://ep/"} {
		if _, err := ParseReference(bad); err == nil {
			t.Fatalf("%q should not parse", bad)
		}
	}
}

// Property: references round-trip through String/Parse.
func TestReferenceRoundTripProperty(t *testing.T) {
	f := func(epRaw, pathRaw uint16) bool {
		ep := "ep" + itoa(int(epRaw))
		path := "p/" + itoa(int(pathRaw))
		r := Reference{Endpoint: ep, Path: path}
		back, err := ParseReference(r.String())
		return err == nil && back == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
