#!/usr/bin/env bash
# Auth smoke: durable identity + strict token auth, end to end over the
# real binaries.
#
#   1. a server started with -auth -data-dir answers 401 to any request
#      without a bearer token — including one that tries the
#      X-DLHub-Tenant development header (the shim is a rejected side
#      door when auth is on, on v2 AND v1 routes);
#   2. an account registers, `dlhub login` obtains a token, and the
#      token drives the API: whoami resolves the identity to its
#      tenant, and `dlhub tenant set-quota` installs a durable quota;
#   3. kill -9 the server — no shutdown checkpoint. The restarted
#      server (same -data-dir) must: reject the OLD token (tokens are
#      deliberately not durable), let the replayed account simply log
#      in again, and still have the quota (DURABLE true);
#   4. strict mode holds after recovery: unauthenticated and
#      header-spoofed requests still answer 401.
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/smoke-lib.sh

HTTP=127.0.0.1:18086
QUEUE=127.0.0.1:17006
BASE=http://$HTTP
DATA=$SMOKE_WORK/data
export DLHUB_SERVER=$BASE
export DLHUB_TOKEN_FILE=$SMOKE_WORK/token
export DLHUB_PASSWORD=hunter2

build_bins dlhub-server dlhub-taskmanager dlhub

"$SMOKE_BIN/dlhub-server" -http "$HTTP" -queue "$QUEUE" -data-dir "$DATA" -auth &
SERVER_PID=$!
wait_for_healthy "$BASE"
"$SMOKE_BIN/dlhub-taskmanager" -queue "$QUEUE" -id auth-tm-1 -nodes 2 -heartbeat 300ms &
wait_for_ready "$BASE"

# --- 1: no token, no service ------------------------------------------------
code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/api/v2/tenants")
[ "$code" = "401" ] || { echo "auth: unauthenticated v2 request got $code, want 401"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -H 'X-DLHub-Tenant: acme' "$BASE/api/v2/tenants")
[ "$code" = "401" ] || { echo "auth: header-spoofed v2 request got $code, want 401"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -H 'X-DLHub-Tenant: acme' "$BASE/api/servables")
[ "$code" = "401" ] || { echo "auth: header-spoofed v1 request got $code, want 401"; exit 1; }
echo "auth: anonymous and header-spoofed requests rejected"

# --- 2: register, login, durable quota ---------------------------------------
"$SMOKE_BIN/dlhub" register -user alice -name "Alice" -tenant acme
"$SMOKE_BIN/dlhub" login -user alice
"$SMOKE_BIN/dlhub" whoami | grep -q '"tenant": "acme"' \
  || { echo "auth: whoami does not resolve to tenant acme"; exit 1; }
"$SMOKE_BIN/dlhub" tenant set-quota -max-in-flight 2 -rate 5 -priority high acme
"$SMOKE_BIN/dlhub" tenant ls | grep -E '^acme\s+high' | grep -q 'true' \
  || { echo "auth: tenant ls does not show acme's quota as durable"; exit 1; }
echo "auth: alice registered, logged in, quota installed (durable)"
OLD_TOKEN=$(cat "$DLHUB_TOKEN_FILE")

# Registration is create-only: re-registering alice (new password) is a
# 409 and must not overwrite her credential.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/api/v2/auth/register" \
  -H 'Content-Type: application/json' \
  -d '{"username":"alice","password":"stolen"}')
[ "$code" = "409" ] || { echo "auth: duplicate registration got $code, want 409"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/api/v2/auth/login" \
  -H 'Content-Type: application/json' \
  -d '{"username":"alice","password":"stolen"}')
[ "$code" = "401" ] || { echo "auth: takeover password logs in ($code), want 401"; exit 1; }
echo "auth: duplicate registration rejected, credential intact"

# --- 3: kill -9, recover ------------------------------------------------------
echo "auth: kill -9 server (pid $SERVER_PID)"
kill -9 "$SERVER_PID"
"$SMOKE_BIN/dlhub-server" -http "$HTTP" -queue "$QUEUE" -data-dir "$DATA" -auth &
wait_for_healthy "$BASE"

# The old bearer died with the process (tokens are not durable)...
code=$(curl -s -o /dev/null -w '%{http_code}' -H "Authorization: Bearer $OLD_TOKEN" "$BASE/api/v2/tenants")
[ "$code" = "401" ] || { echo "auth: pre-restart token still works ($code), want 401"; exit 1; }
echo "auth: pre-restart token invalidated by the restart"

# ...but the account was WAL-replayed: the same credentials log in again,
# and the binding still resolves to acme.
"$SMOKE_BIN/dlhub" login -user alice
"$SMOKE_BIN/dlhub" whoami | grep -q '"tenant": "acme"' \
  || { echo "auth: recovered account does not resolve to acme"; exit 1; }

# The quota survived the kill: same spec, still marked durable.
tenants=$(curl -fsS -H "Authorization: Bearer $(cat "$DLHUB_TOKEN_FILE")" "$BASE/api/v2/tenants")
echo "$tenants" | grep -q '"max_in_flight":2' \
  || { echo "auth: quota lost across restart: $tenants"; exit 1; }
echo "$tenants" | grep -q '"durable":true' \
  || { echo "auth: recovered quota not marked durable: $tenants"; exit 1; }
echo "auth: account and quota survived kill -9"

# --- 4: strict mode holds after recovery --------------------------------------
code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/api/v2/tenants")
[ "$code" = "401" ] || { echo "auth: post-restart unauthenticated request got $code, want 401"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -H 'X-DLHub-Tenant: acme' "$BASE/api/v2/tenants")
[ "$code" = "401" ] || { echo "auth: post-restart header spoof got $code, want 401"; exit 1; }

# Logout revokes: the token stops working server-side.
TOKEN=$(cat "$DLHUB_TOKEN_FILE")
"$SMOKE_BIN/dlhub" logout
code=$(curl -s -o /dev/null -w '%{http_code}' -H "Authorization: Bearer $TOKEN" "$BASE/api/v2/tenants")
[ "$code" = "401" ] || { echo "auth: revoked token still works ($code), want 401"; exit 1; }
echo "auth: logout revoked the token server-side"

echo "smoke-auth: OK"
