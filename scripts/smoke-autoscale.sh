#!/usr/bin/env bash
# Autoscale smoke: server + task manager as separate processes, publish
# the builtin test:sleep servable through the CLI, enable autoscaling,
# drive concurrent load, and require the replica count to move off 1 on
# its own.
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/smoke-lib.sh

HTTP=127.0.0.1:18081
QUEUE=127.0.0.1:17001
BASE=http://$HTTP

build_bins dlhub-server dlhub-taskmanager dlhub
"$SMOKE_BIN/dlhub-server" -http "$HTTP" -queue "$QUEUE" -autoscale-interval 100ms &
wait_for_healthy "$BASE"
"$SMOKE_BIN/dlhub-taskmanager" -queue "$QUEUE" -id smoke-tm -nodes 4 &
wait_for_ready "$BASE"

export DLHUB_SERVER=$BASE
cd "$SMOKE_WORK"
"$SMOKE_BIN/dlhub" init -name smoke -title "Autoscale smoke" -author "CI" \
  -type python_function -entry test:sleep
"$SMOKE_BIN/dlhub" publish -deploy 1
"$SMOKE_BIN/dlhub" autoscale -enable -min 1 -max 4 -target-load 1 \
  -up-cooldown 200ms anonymous/smoke

# 8 concurrent clients against a 50ms-serial servable: demand far above
# target-load 1, so the controller must scale up.
for c in $(seq 1 8); do
  ( end=$((SECONDS+30)); while [ $SECONDS -lt $end ]; do
      curl -s -o /dev/null -X POST -d '{"input":"x","no_memo":true}' \
        "$BASE/api/v2/servables/anonymous/smoke/run"
    done ) &
done

ok=""
for i in $(seq 1 60); do
  reps=$(curl -fsS "$BASE/api/v2/servables/anonymous/smoke/autoscale" \
    | grep -o '"replicas":[0-9]*' | head -1 | cut -d: -f2)
  echo "replicas=$reps"
  if [ -n "$reps" ] && [ "$reps" -gt 1 ]; then ok=yes; break; fi
  sleep 0.5
done
[ -n "$ok" ] || { echo "autoscaler never scaled up"; exit 1; }
echo "smoke-autoscale: OK"
