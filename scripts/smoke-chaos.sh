#!/usr/bin/env bash
# Chaos smoke: two Task Managers serve steady load, one is kill -9'd
# mid-run. The acceptance contract of the TM lifecycle subsystem:
#
#   1. zero client-visible failures — every idempotent run that was
#      routed to the dead TM is re-dispatched to the survivor by the
#      dead-TM watchdog (failover), within the request deadline;
#   2. /api/v2/stats records the failovers (redispatched > 0);
#   3. draining + deregistering the dead TM leaves the servable's
#      placements observable on the survivor via /api/v2/servables/{id},
#      and requests keep succeeding afterwards.
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/smoke-lib.sh

HTTP=127.0.0.1:18083
QUEUE=127.0.0.1:17003
BASE=http://$HTTP

build_bins dlhub-server dlhub-taskmanager dlhub

# Liveness window 1500ms against 300ms heartbeats: 5 missed beats
# declare a TM dead — fast enough that failover lands well inside the
# default 120s request deadline, slow enough that a loaded-but-alive TM
# is never falsely declared lost. (Liveness is on by default now —
# -tm-stale-after defaults to 15s, 3x the default heartbeat — but this
# smoke compresses both to keep the kill-to-failover window short.)
"$SMOKE_BIN/dlhub-server" -http "$HTTP" -queue "$QUEUE" -tm-stale-after 1500ms &
wait_for_healthy "$BASE"
"$SMOKE_BIN/dlhub-taskmanager" -queue "$QUEUE" -id chaos-tm-1 -nodes 2 -heartbeat 300ms &
TM1_PID=$!
"$SMOKE_BIN/dlhub-taskmanager" -queue "$QUEUE" -id chaos-tm-2 -nodes 2 -heartbeat 300ms &
wait_for_ready "$BASE"
wait_for_tm "$BASE" chaos-tm-1
wait_for_tm "$BASE" chaos-tm-2

export DLHUB_SERVER=$BASE
cd "$SMOKE_WORK"
"$SMOKE_BIN/dlhub" init -name chaos -title "Chaos smoke" -author "CI" \
  -type python_function -entry test:sleep
"$SMOKE_BIN/dlhub" publish
# Place the servable on BOTH sites: failover re-dispatches to another
# PLACED TM — replication is what buys availability.
curl -fsS -X POST -d '{"replicas":1,"tm":"chaos-tm-1"}' \
  "$BASE/api/v2/servables/anonymous/chaos/deploy" >/dev/null
curl -fsS -X POST -d '{"replicas":1,"tm":"chaos-tm-2"}' \
  "$BASE/api/v2/servables/anonymous/chaos/deploy" >/dev/null

# Steady load: 6 clients, unique inputs (defeats both cache tiers so
# every request is a real dispatch), each recording any non-200.
FAILS=$SMOKE_WORK/fails
mkdir -p "$FAILS"
CLIENT_PIDS=()
for c in $(seq 1 6); do
  (
    set +e # a failed request must be RECORDED, not abort the client
    i=0; end=$((SECONDS+22))
    while [ $SECONDS -lt $end ]; do
      i=$((i+1))
      code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
        -d "{\"input\":\"c${c}-${i}\",\"no_memo\":true}" \
        "$BASE/api/v2/servables/anonymous/chaos/run" || echo "curl-exit-$?")
      if [ "$code" != "200" ]; then
        echo "client $c request $i -> $code" >>"$FAILS/client-$c"
      fi
    done
    exit 0
  ) &
  CLIENT_PIDS+=($!)
done

# Let both sites take traffic, then kill one the hard way.
sleep 5
echo "chaos: kill -9 chaos-tm-1 (pid $TM1_PID)"
kill -9 "$TM1_PID"

for pid in "${CLIENT_PIDS[@]}"; do wait "$pid"; done

# (find, not a cat glob: zero failure files must count as 0, not trip
# pipefail on an unexpanded glob)
fail_count=$(find "$FAILS" -type f -exec cat {} + | wc -l)
if [ "$fail_count" -ne 0 ]; then
  echo "chaos: $fail_count client-visible failure(s):"
  find "$FAILS" -type f -exec cat {} +
  exit 1
fi
echo "chaos: zero client-visible failures across the kill"

stats=$(curl -fsS "$BASE/api/v2/stats")
echo "chaos: stats $(echo "$stats" | grep -o '"failovers":{[^}]*}')"
redispatched=$(echo "$stats" | grep -o '"redispatched":[0-9]*' | cut -d: -f2)
if [ -z "$redispatched" ] || [ "$redispatched" -le 0 ]; then
  echo "chaos: expected failovers > 0 in /api/v2/stats"
  exit 1
fi

# Lifecycle teardown of the dead site: drain migrates/removes its
# placements (the survivor already hosts the servable), deregister
# removes it from the registry, and the placement set is observable on
# the servable.
"$SMOKE_BIN/dlhub" tm drain chaos-tm-1
"$SMOKE_BIN/dlhub" tm deregister chaos-tm-1
placements=$(curl -fsS "$BASE/api/v2/servables/anonymous/chaos" \
  | grep -o '"placements":\[[^]]*\]')
echo "chaos: $placements"
echo "$placements" | grep -q 'chaos-tm-2' || { echo "chaos: survivor lost its placement"; exit 1; }
if echo "$placements" | grep -q 'chaos-tm-1'; then
  echo "chaos: dead TM still placed after drain+deregister"
  exit 1
fi
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  -d '{"input":"post-drain","no_memo":true}' \
  "$BASE/api/v2/servables/anonymous/chaos/run")
[ "$code" = "200" ] || { echo "chaos: post-drain request failed ($code)"; exit 1; }
echo "smoke-chaos: OK"
