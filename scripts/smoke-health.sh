#!/usr/bin/env bash
# Health smoke: boot the real server binary and probe the v2 health
# surface. healthz must go 200 immediately; readyz must report 503 with
# the no_task_manager code while no TM is registered.
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/smoke-lib.sh

HTTP=127.0.0.1:18080
QUEUE=127.0.0.1:17000
BASE=http://$HTTP

build_bins dlhub-server
"$SMOKE_BIN/dlhub-server" -http "$HTTP" -queue "$QUEUE" &
wait_for_healthy "$BASE"

curl -fsS "$BASE/api/v2/healthz" | grep -q '"status":"ok"'
code=$(curl -s -o "$SMOKE_WORK/readyz.json" -w '%{http_code}' "$BASE/api/v2/readyz")
[ "$code" = "503" ]
grep -q 'no_task_manager' "$SMOKE_WORK/readyz.json"
echo "smoke-health: OK"
