# Shared helpers for the smoke scripts (scripts/smoke-*.sh).
# Source this file; do not execute it.
#
# Every smoke script is runnable locally from the repository root:
#
#   ./scripts/smoke-health.sh
#
# Conventions: binaries are built into a fresh temp dir (SMOKE_BIN),
# every background process is killed on exit, and each script uses its
# own port pair so they can run back to back (or concurrently in CI
# jobs) without colliding.

SMOKE_BIN=$(mktemp -d)
SMOKE_WORK=$(mktemp -d)

smoke_cleanup() {
  # Kill every background job this shell started (server, TMs, load
  # generators); ignore the ones that already exited.
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$SMOKE_BIN" "$SMOKE_WORK"
}
trap smoke_cleanup EXIT

# build_bins <cmd>...: build the named cmd/<name> binaries into SMOKE_BIN.
build_bins() {
  for name in "$@"; do
    go build -o "$SMOKE_BIN/$name" "./cmd/$name"
  done
}

# wait_for_url <url> [attempts]: poll until the URL answers 2xx
# (0.2s between attempts, default 75 ≈ 15s).
wait_for_url() {
  local url=$1 attempts=${2:-75} i
  for i in $(seq 1 "$attempts"); do
    if curl -fsS "$url" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "smoke: timed out waiting for $url" >&2
  return 1
}

# wait_for_healthy <base-url>: the server process is up.
wait_for_healthy() { wait_for_url "$1/api/v2/healthz" "${2:-75}"; }

# wait_for_ready <base-url>: at least one live Task Manager registered.
wait_for_ready() { wait_for_url "$1/api/v2/readyz" "${2:-75}"; }

# wait_for_tm <base-url> <tm-id>: a specific TM shows up in /api/v2/tms.
wait_for_tm() {
  local base=$1 tm=$2 i
  for i in $(seq 1 75); do
    if curl -fsS "$base/api/v2/tms" 2>/dev/null | grep -q "\"$tm\""; then return 0; fi
    sleep 0.2
  done
  echo "smoke: TM $tm never registered" >&2
  return 1
}
