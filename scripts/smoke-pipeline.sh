#!/usr/bin/env bash
# Pipeline execution smoke: the bench assembles a Management Service
# plus TWO Task Managers with the pipeline steps placed on DISJOINT
# sites, then drives the monolith, distributed and cached-prefix modes.
# The experiment errors (and fails this script) if the distributed path
# cannot complete a pipeline whose steps live on different TMs, or if
# the per-step cache never hits.
#
# Set BENCH_JSON to also write machine-readable results (the CI
# workflow uploads them as the BENCH_pipeline.json artifact).
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/smoke-lib.sh

build_bins dlhub-bench

args=(-exp pipeline -requests 40 -scale 100)
if [ -n "${BENCH_JSON:-}" ]; then
  args+=(-json "$BENCH_JSON")
fi
"$SMOKE_BIN/dlhub-bench" "${args[@]}"
echo "smoke-pipeline: OK"
