#!/usr/bin/env bash
# Recovery smoke: the durable store's acceptance contract, end to end
# over the real binaries.
#
#   1. a server started with -data-dir WALs every mutation: publish a
#      servable, deploy it, install an autoscale policy — and
#      /api/v2/stats exposes the wal counters;
#   2. kill -9 the whole control plane (server AND task manager) — no
#      shutdown checkpoint, the WAL tail is all there is;
#   3. restart with the same -data-dir: the log replays, and the
#      servable, its placement and its policy are all still there
#      BEFORE anything re-deploys;
#   4. the recovered package is complete: deploying it onto the fresh
#      TM (no re-publish) works and the servable serves again.
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/smoke-lib.sh

HTTP=127.0.0.1:18085
QUEUE=127.0.0.1:17005
BASE=http://$HTTP
DATA=$SMOKE_WORK/data

build_bins dlhub-server dlhub-taskmanager dlhub

"$SMOKE_BIN/dlhub-server" -http "$HTTP" -queue "$QUEUE" -data-dir "$DATA" &
SERVER_PID=$!
wait_for_healthy "$BASE"
"$SMOKE_BIN/dlhub-taskmanager" -queue "$QUEUE" -id recovery-tm-1 -nodes 2 -heartbeat 300ms &
TM_PID=$!
wait_for_ready "$BASE"
wait_for_tm "$BASE" recovery-tm-1

export DLHUB_SERVER=$BASE
cd "$SMOKE_WORK"
"$SMOKE_BIN/dlhub" init -name recovery -title "Recovery smoke" -author "CI" \
  -type python_function -entry test:length
"$SMOKE_BIN/dlhub" publish
curl -fsS -X POST -d '{"replicas":2,"tm":"recovery-tm-1"}' \
  "$BASE/api/v2/servables/anonymous/recovery/deploy" >/dev/null
curl -fsS -X PUT -d '{"enabled":true,"min_replicas":1,"max_replicas":4}' \
  "$BASE/api/v2/servables/anonymous/recovery/autoscale" >/dev/null

# Every mutation above must already be on disk (fsynced per record).
wal=$(curl -fsS "$BASE/api/v2/stats" | grep -o '"wal":{[^}]*}')
echo "recovery: pre-kill $wal"
records=$(echo "$wal" | grep -o '"records":[0-9]*' | cut -d: -f2)
if [ -z "$records" ] || [ "$records" -lt 3 ]; then
  echo "recovery: expected >= 3 wal records (publish, deploy, policy), got '$records'"
  exit 1
fi

echo "recovery: kill -9 server (pid $SERVER_PID) and TM (pid $TM_PID)"
kill -9 "$SERVER_PID" "$TM_PID"

# Same -data-dir: checkpoint + WAL tail replay rebuilds the repository.
"$SMOKE_BIN/dlhub-server" -http "$HTTP" -queue "$QUEUE" -data-dir "$DATA" &
wait_for_healthy "$BASE"

# Recovered state is visible BEFORE any TM or deploy comes back.
servable=$(curl -fsS "$BASE/api/v2/servables/anonymous/recovery")
echo "$servable" | grep -q '"recovery-tm-1"' \
  || { echo "recovery: placement lost across restart: $servable"; exit 1; }
echo "recovery: servable + placement survived"

policy=$(curl -fsS "$BASE/api/v2/servables/anonymous/recovery/autoscale")
echo "$policy" | grep -q '"max_replicas":4' \
  || { echo "recovery: autoscale policy lost across restart: $policy"; exit 1; }
echo "recovery: autoscale policy survived"

# Recovery folded the replayed tail into a fresh checkpoint.
wal=$(curl -fsS "$BASE/api/v2/stats" | grep -o '"wal":{[^}]*}')
echo "recovery: post-restart $wal"
compactions=$(echo "$wal" | grep -o '"compactions":[0-9]*' | cut -d: -f2)
if [ -z "$compactions" ] || [ "$compactions" -lt 1 ]; then
  echo "recovery: expected a recovery compaction in wal stats"
  exit 1
fi

# A fresh TM site: the recovered PACKAGE (components included) must be
# deployable without a re-publish, and then serve.
"$SMOKE_BIN/dlhub-taskmanager" -queue "$QUEUE" -id recovery-tm-1 -nodes 2 -heartbeat 300ms &
wait_for_ready "$BASE"
wait_for_tm "$BASE" recovery-tm-1
curl -fsS -X POST -d '{"replicas":1,"tm":"recovery-tm-1"}' \
  "$BASE/api/v2/servables/anonymous/recovery/deploy" >/dev/null
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  -d '{"input":"after-recovery","no_memo":true}' \
  "$BASE/api/v2/servables/anonymous/recovery/run")
[ "$code" = "200" ] || { echo "recovery: post-recovery request failed ($code)"; exit 1; }
echo "recovery: recovered servable serves"

echo "smoke-recovery: OK"
