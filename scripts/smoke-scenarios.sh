#!/usr/bin/env bash
# Scenario harness smoke, in three passes over scenarios/*.yaml:
#
#   1. validate every spec (-scenario-check) — a spec that does not
#      parse or fails validation breaks the build, not a later run;
#   2. verify every committed BENCH_<name>.json is up to date with its
#      spec (-verify-json compares the recorded spec_sha256) — editing
#      a scenario without re-running it and committing the result is a
#      CI failure;
#   3. replay the chaos and ramp scenarios at reduced scale
#      (-scenario-compress) and fail on any assertion failure — the
#      kill/restart fault path and the ramp pacer run on every push.
#
# Results of the compressed replays are written to a temp dir; only
# full-scale runs (compress 1) belong in the committed BENCH files.
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/smoke-lib.sh

build_bins dlhub-bench

echo "== validate all scenario specs =="
for f in scenarios/*.yaml; do
  "$SMOKE_BIN/dlhub-bench" -scenario "$f" -scenario-check
done

echo "== committed BENCH results are current =="
for f in scenarios/*.yaml; do
  name=$(basename "$f" .yaml)
  json="BENCH_$name.json"
  if [ ! -f "$json" ]; then
    echo "smoke-scenarios: $json missing — run: dlhub-bench -scenario $f" >&2
    exit 1
  fi
  "$SMOKE_BIN/dlhub-bench" -scenario "$f" -verify-json "$json"
done

echo "== compressed replays (chaos + ramp + MS restart + saturation + tenants) =="
"$SMOKE_BIN/dlhub-bench" -scenario scenarios/chaos-tm-kill.yaml \
  -scenario-compress 2 -json "$SMOKE_WORK/BENCH_chaos.json"
"$SMOKE_BIN/dlhub-bench" -scenario scenarios/diurnal-ramp.yaml \
  -scenario-compress 3 -json "$SMOKE_WORK/BENCH_ramp.json"
"$SMOKE_BIN/dlhub-bench" -scenario scenarios/ms-restart-recovery.yaml \
  -scenario-compress 2 -json "$SMOKE_WORK/BENCH_msrestart.json"
"$SMOKE_BIN/dlhub-bench" -scenario scenarios/saturation.yaml \
  -scenario-compress 4 -json "$SMOKE_WORK/BENCH_saturation.json"
# Multi-tenant QoS: the hog tenant floods at 10x its quota; the run
# fails unless the quiet tenant finishes with zero rejections.
"$SMOKE_BIN/dlhub-bench" -scenario scenarios/tenant-fairness.yaml \
  -scenario-compress 3 -json "$SMOKE_WORK/BENCH_tenant-fairness.json"
# Authenticated + durable tenancy: bearer tokens resolve each request's
# tenant, the MS is kill -9'd mid-run, and the replayed quota must keep
# rejecting the hog after recovery.
"$SMOKE_BIN/dlhub-bench" -scenario scenarios/tenant-fairness-auth.yaml \
  -scenario-compress 2 -json "$SMOKE_WORK/BENCH_tenant-fairness-auth.json"

echo "== -diff: a run diffed against itself is never a regression =="
"$SMOKE_BIN/dlhub-bench" -diff BENCH_saturation.json BENCH_saturation.json
# ...and the compressed replay vs the committed full-scale run must at
# least parse and render (threshold 10 = never fails on magnitude).
"$SMOKE_BIN/dlhub-bench" -diff -diff-threshold 10 \
  BENCH_saturation.json "$SMOKE_WORK/BENCH_saturation.json"

echo "smoke-scenarios: OK"
