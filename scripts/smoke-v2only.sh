#!/usr/bin/env bash
# v2-only smoke: boot the server with -disable-v1 and prove that
#
#   1. every retired v1 route answers 410 Gone (a deliberate retirement
#      signal, not a generic 404) while the Deprecation headers still
#      point at the successor version;
#   2. the complete publish → deploy → run → stats flow works over
#      /api/v2 alone — nothing in the serving path still leans on a
#      v1 shim;
#   3. the multi-tenant QoS surface rides the same v2-only server:
#      `dlhub tenant set-quota` / `tenant ls` round-trip a quota
#      through PUT /api/v2/tenants/{id}/quota, a tenant flooding past
#      max_in_flight is rejected with the quota_exceeded error code,
#      and /api/v2/stats reports the per-tenant counters.
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/smoke-lib.sh

HTTP=127.0.0.1:18084
QUEUE=127.0.0.1:17004
BASE=http://$HTTP

build_bins dlhub-server dlhub-taskmanager dlhub

"$SMOKE_BIN/dlhub-server" -http "$HTTP" -queue "$QUEUE" -disable-v1 &
wait_for_healthy "$BASE"
"$SMOKE_BIN/dlhub-taskmanager" -queue "$QUEUE" -id v2only-tm-1 -nodes 2 -heartbeat 300ms &
wait_for_ready "$BASE"
wait_for_tm "$BASE" v2only-tm-1

echo "== retired v1 routes answer 410 Gone =="
for route in "GET /api/servables" "POST /api/search" "GET /api/tms" "GET /api/cache/stats"; do
  method=${route%% *}
  path=${route##* }
  code=$(curl -s -o "$SMOKE_WORK/v1.json" -w '%{http_code}' -X "$method" "$BASE$path")
  if [ "$code" != "410" ]; then
    echo "v2only: $route -> $code, want 410" >&2
    exit 1
  fi
  grep -q '/api/v2' "$SMOKE_WORK/v1.json" || { echo "v2only: 410 body does not point at /api/v2"; exit 1; }
done
echo "v2only: v1 surface is gone (410)"

echo "== the full flow works over /api/v2 alone =="
export DLHUB_SERVER=$BASE
cd "$SMOKE_WORK"
"$SMOKE_BIN/dlhub" init -name v2only -title "v2-only smoke" -author "CI" \
  -type python_function -entry test:sleep
"$SMOKE_BIN/dlhub" publish
curl -fsS -X POST -d '{"replicas":1,"tm":"v2only-tm-1"}' \
  "$BASE/api/v2/servables/anonymous/v2only/deploy" >/dev/null
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  -d '{"input":"ping","no_memo":true}' \
  "$BASE/api/v2/servables/anonymous/v2only/run")
[ "$code" = "200" ] || { echo "v2only: v2 run failed ($code)"; exit 1; }

echo "== tenant quota CLI + route on the v2-only server =="
"$SMOKE_BIN/dlhub" tenant set-quota -max-in-flight 1 -rate 1 -priority low acme
"$SMOKE_BIN/dlhub" tenant ls | grep -Eq '^acme\s+low' || { echo "v2only: tenant ls missing acme"; exit 1; }
# Flood past the quota from the acme tenant (auth is off, so the
# X-DLHub-Tenant header carries the tenant tag): with max_in_flight=1
# and rate 1/s, a burst of 8 must trip quota_exceeded at least once.
saw_quota=0
for i in $(seq 1 8); do
  body=$(curl -s -X POST -H 'X-DLHub-Tenant: acme' \
    -d "{\"input\":\"q$i\",\"no_memo\":true}" \
    "$BASE/api/v2/servables/anonymous/v2only/run")
  if echo "$body" | grep -q 'quota_exceeded'; then saw_quota=1; fi
done
[ "$saw_quota" = "1" ] || { echo "v2only: flood never hit quota_exceeded"; exit 1; }
stats=$(curl -fsS "$BASE/api/v2/stats")
echo "$stats" | grep -q '"tenants"' || { echo "v2only: stats missing tenants block"; exit 1; }
echo "$stats" | grep -q '"acme"' || { echo "v2only: stats missing acme tenant"; exit 1; }
echo "v2only: quota enforced and reported for tenant acme"

echo "smoke-v2only: OK"
